(* Tests for the overload-robustness stack: quota edge cases, bounded
   audit retention, driver backpressure (bounded queues, deadline sheds,
   round-robin service), the per-instance supervisor (breaker, quarantine,
   checkpoint restart, degraded service, isolation), and the flood /
   wedge-drill acceptance numbers. *)

open Vtpm_access
open Vtpm_mgr
module Experiments = Vtpm_sim.Experiments

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* --- Quota edges --------------------------------------------------------------- *)

let subj d = Subject.Guest d

let test_quota_zero_rate () =
  let cost = Vtpm_util.Cost.create () in
  let q = Quota.create ~rate_per_s:0.0 ~burst:2.0 ~cost () in
  check_b "burst 1" true (Quota.admit q (subj 1));
  check_b "burst 2" true (Quota.admit q (subj 1));
  check_b "exhausted" false (Quota.admit q (subj 1));
  (* A zero-rate bucket never refills, however much time passes. *)
  Vtpm_util.Cost.charge cost 3_600_000_000.0;
  check_b "still exhausted" false (Quota.admit q (subj 1));
  check_b "other subject unaffected" true (Quota.admit q (subj 2))

let test_quota_refill_across_time_jumps () =
  let cost = Vtpm_util.Cost.create () in
  let q = Quota.create ~rate_per_s:10.0 ~burst:5.0 ~cost () in
  for i = 1 to 5 do
    check_b (Printf.sprintf "burst %d" i) true (Quota.admit q (subj 1))
  done;
  check_b "drained" false (Quota.admit q (subj 1));
  (* 200 ms at 10/s refills exactly 2 tokens. *)
  Vtpm_util.Cost.charge cost 200_000.0;
  check_b "refill 1" true (Quota.admit q (subj 1));
  check_b "refill 2" true (Quota.admit q (subj 1));
  check_b "no third" false (Quota.admit q (subj 1));
  (* A huge jump caps at the burst, not rate * dt. *)
  Vtpm_util.Cost.charge cost 1_000_000_000.0;
  check_b "capped at burst" true (Quota.remaining q (subj 1) <= 5.0 +. 1e-9);
  for i = 1 to 5 do
    check_b (Printf.sprintf "recapped %d" i) true (Quota.admit q (subj 1))
  done;
  check_b "capped drained" false (Quota.admit q (subj 1))

let test_quota_remaining_monotone () =
  let cost = Vtpm_util.Cost.create () in
  let q = Quota.create ~rate_per_s:50.0 ~burst:10.0 ~cost () in
  (* With no time passing, [remaining] strictly decreases per admit and
     never goes negative. *)
  let prev = ref (Quota.remaining q (subj 3)) in
  for _ = 1 to 12 do
    ignore (Quota.admit q (subj 3));
    let r = Quota.remaining q (subj 3) in
    check_b "non-increasing" true (r <= !prev);
    check_b "non-negative" true (r >= 0.0);
    prev := r
  done

let test_quota_forget_teardown () =
  let cost = Vtpm_util.Cost.create () in
  let q = Quota.create ~cost () in
  ignore (Quota.admit q (subj 1));
  ignore (Quota.admit q (subj 2));
  check_i "two buckets" 2 (Quota.tracked q);
  Quota.forget q (subj 1);
  check_i "one bucket" 1 (Quota.tracked q);
  Quota.forget q (subj 1);
  check_i "forget idempotent" 1 (Quota.tracked q)

(* --- Audit rotation ------------------------------------------------------------ *)

let fill_audit a n =
  for i = 1 to n do
    Audit.append a ~subject:"g" ~operation:(Printf.sprintf "op%d" i) ~instance:None
      ~allowed:true ~reason:"ok"
  done

let test_audit_rotation_bounds_retention () =
  let cost = Vtpm_util.Cost.create () in
  let a = Audit.create ~cost in
  Audit.set_max_entries a (Some 8);
  fill_audit a 100;
  check_i "length counts everything" 100 (Audit.length a);
  check_b "retention bounded" true (Audit.retained_entries a <= 8);
  check_b "rotated" true (Audit.rotations a > 0);
  check_i "dropped accounts" (100 - Audit.retained_entries a) (Audit.dropped a)

let test_audit_rotation_keeps_chain_valid () =
  let cost = Vtpm_util.Cost.create () in
  let a = Audit.create ~cost in
  fill_audit a 20;
  let head_before = Audit.head a in
  Audit.set_max_entries a (Some 6);
  check_s "head survives rotation" head_before (Audit.head a);
  check_b "base moved off genesis" true (Audit.base a <> Audit.genesis);
  let retained = Audit.entries a in
  check_b "retained window verifies against base" true
    (Audit.verify_chain ~expected_head:(Audit.head a) ~base:(Audit.base a) retained
    = Ok ());
  check_b "genesis anchor no longer verifies" true
    (Audit.verify_chain ~expected_head:(Audit.head a) retained <> Ok ())

let test_audit_uncapped_unchanged () =
  let cost = Vtpm_util.Cost.create () in
  let a = Audit.create ~cost in
  fill_audit a 50;
  check_i "no rotation uncapped" 0 (Audit.rotations a);
  check_i "everything retained" 50 (Audit.retained_entries a);
  check_s "base is genesis" Audit.genesis (Audit.base a);
  check_b "full chain verifies" true
    (Audit.verify_chain ~expected_head:(Audit.head a) (Audit.entries a) = Ok ())

(* --- Driver backpressure -------------------------------------------------------- *)

(* Two-guest improved host; returns (host, g1, g2). *)
let two_guest_host ?(seed = 5) () =
  let host = Host.create ~mode:Host.Improved_mode ~seed ~rsa_bits:256 () in
  let g1 = Host.create_guest_exn host ~name:"a" ~label:"tenant_00" () in
  let g2 = Host.create_guest_exn host ~name:"b" ~label:"tenant_01" () in
  (host, g1, g2)

let read_wire = Vtpm_tpm.Wire.encode_request (Vtpm_tpm.Cmd.Pcr_read { pcr = 4 })

let test_naive_queue_unbounded () =
  let host, g1, _ = two_guest_host () in
  let b = host.Host.backend in
  for _ = 1 to 50 do
    match Driver.submit b g1.Host.conn ~wire:read_wire () with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "naive submit must not reject"
  done;
  check_i "all queued" 50 (Driver.queued_depth b ~fe_domid:g1.Host.domid);
  check_i "nothing shed" 0 (Driver.shed_count b);
  check_i "nothing rejected" 0 (Driver.rejected_count b)

let test_capacity_rejection_with_retry_hint () =
  let host, g1, _ = two_guest_host () in
  let b = host.Host.backend in
  Driver.set_overload b (Some { Driver.queue_capacity = 2; deadline_us = 5_000.0 });
  check_b "1st" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  check_b "2nd" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  (match Driver.submit b g1.Host.conn ~wire:read_wire () with
  | Error (Vtpm_util.Verror.Overloaded { retry_after_us; _ }) ->
      check_b "positive retry hint" true (retry_after_us > 0.0);
      check_b "hint bounded by deadline" true (retry_after_us <= 5_000.0)
  | Ok () -> Alcotest.fail "3rd submit must be rejected"
  | Error e -> Alcotest.failf "wrong error: %s" (Vtpm_util.Verror.to_string e));
  check_i "rejection counted" 1 (Driver.rejected_count b);
  check_i "depth unchanged" 2 (Driver.queued_depth b ~fe_domid:g1.Host.domid)

let test_deadline_shed_oldest_first () =
  let host, g1, _ = two_guest_host () in
  let b = host.Host.backend in
  let cost = Host.cost host in
  Driver.set_overload b (Some { Driver.queue_capacity = 8; deadline_us = 1_000.0 });
  let sheds = ref [] in
  Driver.set_on_backpressure b (fun bp domid ->
      if bp = Driver.Shed then sheds := domid :: !sheds);
  check_b "queued" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  Vtpm_util.Cost.charge cost 2_000.0;
  (* The stale entry is shed at the next admission, freeing the slot. *)
  check_b "fresh entry admitted" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  check_i "one shed" 1 (Driver.shed_count b);
  check_b "shed attributed to the frontend" true (!sheds = [ g1.Host.domid ]);
  check_i "only the fresh entry queued" 1 (Driver.queued_depth b ~fe_domid:g1.Host.domid)

let pump_domids b n =
  List.filter_map
    (fun () -> match Driver.pump_one b with `Served s -> Some s.Driver.s_domid | `Idle -> None)
    (List.init n (fun _ -> ()))

let test_pump_round_robin_under_policy () =
  let host, g1, g2 = two_guest_host () in
  let b = host.Host.backend in
  Driver.set_overload b (Some { Driver.queue_capacity = 8; deadline_us = 1_000_000.0 });
  (* g2 floods first; g1 submits later. Round-robin still alternates. *)
  for _ = 1 to 3 do
    check_b "g2 queued" true (Driver.submit b g2.Host.conn ~wire:read_wire () = Ok ())
  done;
  for _ = 1 to 2 do
    check_b "g1 queued" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ())
  done;
  let order = pump_domids b 5 in
  check_b "alternates frontends" true
    (order
    = [ g1.Host.domid; g2.Host.domid; g1.Host.domid; g2.Host.domid; g2.Host.domid ])

let test_pump_arrival_order_naive () =
  let host, g1, g2 = two_guest_host () in
  let b = host.Host.backend in
  let cost = Host.cost host in
  let t = Vtpm_util.Cost.now cost in
  (* Backdated arrivals decide the order, not submission order. *)
  check_b "late" true
    (Driver.submit b g1.Host.conn ~wire:read_wire ~arrival_us:(t +. 50.0) () = Ok ());
  check_b "early" true
    (Driver.submit b g2.Host.conn ~wire:read_wire ~arrival_us:(t +. 10.0) () = Ok ());
  let order = pump_domids b 2 in
  check_b "earliest arrival first" true (order = [ g2.Host.domid; g1.Host.domid ])

let test_destroy_guest_drops_queue_and_quota () =
  let host, g1, g2 = two_guest_host () in
  let b = host.Host.backend in
  let m = Host.monitor_exn host in
  Monitor.set_quota m ~rate_per_s:100.0 ~burst:10.0;
  (* Create the guest's bucket and queue entry, then tear the guest down. *)
  let client = Host.guest_client host g1 in
  (match Vtpm_tpm.Client.pcr_read client ~pcr:0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "pcr read should succeed");
  check_b "queued work pending" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  let tracked_before =
    match m.Monitor.quota with Some q -> Quota.tracked q | None -> 0
  in
  check_b "bucket exists" true (tracked_before >= 1);
  (match Host.destroy_guest host g1 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "destroy: %s" e);
  check_i "queue dropped" 0 (Driver.queued_depth b ~fe_domid:g1.Host.domid);
  (match m.Monitor.quota with
  | Some q -> check_i "bucket dropped" (tracked_before - 1) (Quota.tracked q)
  | None -> Alcotest.fail "quota vanished");
  (* The co-tenant is untouched. *)
  let client2 = Host.guest_client host g2 in
  check_b "co-tenant still served" true
    (match Vtpm_tpm.Client.pcr_read client2 ~pcr:0 with Ok _ -> true | Error _ -> false)

(* --- Supervisor ----------------------------------------------------------------- *)

let extend_wire k =
  Vtpm_tpm.Wire.encode_request
    (Vtpm_tpm.Cmd.Extend { pcr = 7; digest = Vtpm_crypto.Sha1.digest (string_of_int k) })

let pcr7_read_wire = Vtpm_tpm.Wire.encode_request (Vtpm_tpm.Cmd.Pcr_read { pcr = 7 })

(* Host + supervised instance with the wedge fault at [rate]. *)
let supervised_fixture ?(seed = 23) ?(rate = 0.0) ?(cfg = Supervisor.default_config) () =
  let host = Host.create ~mode:Host.Improved_mode ~seed ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"sup" ~label:"tenant_00" () in
  let faults =
    Vtpm_xen.Faults.create ~seed ~rates:[ (Vtpm_xen.Faults.Wedged_instance, rate) ] ()
  in
  Vtpm_xen.Hypervisor.set_faults host.Host.xen faults;
  let ckpt = Checkpoint.create host.Host.mgr in
  (match Checkpoint.checkpoint_all ckpt with Ok () -> () | Error e -> Alcotest.fail e);
  let sup = Supervisor.create ~cfg ~mgr:host.Host.mgr ~ckpt ~faults () in
  (host, g, sup, faults)

let wedge_cfg ?(max_restarts = 10) () =
  {
    Supervisor.failure_threshold = 1;
    open_cooldown_us = 10_000.0;
    max_restarts;
    probe_interval_us = 5_000.0;
    is_read_only = Command_class.is_read_only;
  }

let test_breaker_trip_quarantine_restore () =
  let host, g, sup, faults = supervised_fixture ~rate:1.0 ~cfg:(wedge_cfg ()) () in
  let events = ref [] in
  Supervisor.set_on_event sup (fun ~vtpm_id:_ e -> events := e :: !events);
  (* The wedge fires on the first request; threshold 1 trips the breaker,
     quarantines, restores from checkpoint — and the read is still served,
     from the shadow. *)
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "degraded read failed: %s" (Vtpm_util.Verror.to_string e));
  check_i "breaker open" 1 (Supervisor.breaker_opens sup);
  check_i "quarantined" 1 (Supervisor.quarantines sup);
  check_b "degraded health" true (Supervisor.health sup g.Host.vtpm_id = Supervisor.Degraded);
  check_b "events include quarantine" true (List.mem Supervisor.Quarantine !events);
  check_b "events include restart" true (List.mem Supervisor.Restart !events);
  (* Disarm now: at rate 1.0 every further request would re-wedge the
     freshly restored instance. *)
  Vtpm_xen.Faults.disarm faults;
  (* Mutations are refused while the breaker is open. *)
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:(extend_wire 1) with
  | Error (Vtpm_util.Verror.Overloaded { retry_after_us; _ }) ->
      check_b "retry hint" true (retry_after_us > 0.0)
  | Ok _ -> Alcotest.fail "extend must be rejected while degraded"
  | Error e -> Alcotest.failf "wrong error: %s" (Vtpm_util.Verror.to_string e));
  let e = Supervisor.entry sup g.Host.vtpm_id in
  check_b "degraded read counted" true (e.Supervisor.degraded_reads >= 1);
  check_b "degraded reject counted" true (e.Supervisor.degraded_rejects >= 1);
  (* Wait out the cooldown: the half-open probe closes the breaker and
     service returns to normal, mutations included. *)
  Vtpm_util.Cost.charge (Host.cost host) 20_000.0;
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:(extend_wire 2) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-recovery extend: %s" (Vtpm_util.Verror.to_string e));
  check_b "healthy again" true (Supervisor.health sup g.Host.vtpm_id = Supervisor.Healthy);
  check_b "breaker closed event" true (List.mem Supervisor.Breaker_close !events)

let test_isolation_after_restart_budget () =
  let _host, g, sup, _faults = supervised_fixture ~rate:1.0 ~cfg:(wedge_cfg ~max_restarts:0 ()) () in
  (* Restart budget 0: the first quarantine escalates straight to
     permanent isolation — and the triggering request already gets the
     terminal answer, not a one-off degraded response. *)
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
  | Error (Vtpm_util.Verror.Denied _) -> ()
  | Ok _ -> Alcotest.fail "triggering request must see the isolation error"
  | Error e -> Alcotest.failf "wrong error: %s" (Vtpm_util.Verror.to_string e));
  check_b "isolated" true (Supervisor.health sup g.Host.vtpm_id = Supervisor.Isolated);
  check_i "isolation counted" 1 (Supervisor.isolations sup);
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
  | Error (Vtpm_util.Verror.Denied _) -> ()
  | Ok _ -> Alcotest.fail "isolated instance must not serve"
  | Error e -> Alcotest.failf "wrong error: %s" (Vtpm_util.Verror.to_string e))

let pcr_of_response wire =
  match Vtpm_tpm.Wire.decode_response wire with
  | { Vtpm_tpm.Cmd.rc = 0; body = Vtpm_tpm.Cmd.R_extend { new_value }; _ } -> new_value
  | { Vtpm_tpm.Cmd.rc = 0; body = Vtpm_tpm.Cmd.R_pcr_value v; _ } -> v
  | { Vtpm_tpm.Cmd.rc; _ } -> Alcotest.failf "unexpected TPM response (rc %d)" rc

let test_write_through_preserves_acked_state () =
  let host, g, sup, faults = supervised_fixture ~rate:0.0 ~cfg:(wedge_cfg ()) () in
  (* Ack two extends with the supervisor healthy... *)
  let acked = ref "" in
  for k = 1 to 2 do
    match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:(extend_wire k) with
    | Ok resp -> acked := pcr_of_response resp
    | Error e -> Alcotest.failf "extend: %s" (Vtpm_util.Verror.to_string e)
  done;
  (* ...then wedge, quarantine, restore — the shadow read and the restored
     instance must both reflect the last acknowledged extend. *)
  Vtpm_xen.Faults.set_rate faults Vtpm_xen.Faults.Wedged_instance 1.0;
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
  | Ok resp -> check_s "shadow read = last acked" !acked (pcr_of_response resp)
  | Error e -> Alcotest.failf "degraded read: %s" (Vtpm_util.Verror.to_string e));
  Vtpm_xen.Faults.disarm faults;
  Vtpm_util.Cost.charge (Host.cost host) 20_000.0;
  match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
  | Ok resp -> check_s "restored read = last acked" !acked (pcr_of_response resp)
  | Error e -> Alcotest.failf "recovered read: %s" (Vtpm_util.Verror.to_string e)

let test_read_only_classifications_agree () =
  (* The supervisor's built-in fallback must agree with the access layer's
     command classification — degraded mode must not serve a mutation. *)
  for ordinal = 0 to 0x200 do
    check_b
      (Printf.sprintf "ordinal 0x%x" ordinal)
      (Command_class.is_read_only ordinal)
      (Supervisor.builtin_read_only ordinal)
  done

let test_supervisor_forget () =
  let _host, g, sup, _faults = supervised_fixture ~rate:0.0 () in
  ignore (Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire);
  Supervisor.forget sup ~vtpm_id:g.Host.vtpm_id;
  (* A fresh entry appears on next contact: counters reset, healthy. *)
  let e = Supervisor.entry sup g.Host.vtpm_id in
  check_b "fresh after forget" true
    (e.Supervisor.health = Supervisor.Healthy && e.Supervisor.restarts = 0)

let test_suspended_is_not_a_health_failure () =
  (* Wedge probability 1.0: if suspension read as ill health, the first
     contact would trip the breaker and the checkpoint restore would
     force the parked instance back to Active. *)
  let host, g, sup, _faults = supervised_fixture ~rate:1.0 ~cfg:(wedge_cfg ()) () in
  (match Host.suspend_vtpm host g with Ok () -> () | Error e -> Alcotest.fail e);
  (* Requests surface the suspension conflict untouched... *)
  (match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
  | Error (Vtpm_util.Verror.Conflict _) -> ()
  | Ok _ -> Alcotest.fail "suspended instance must not serve"
  | Error e -> Alcotest.failf "wrong error: %s" (Vtpm_util.Verror.to_string e));
  (* ...and idle probes skip the parked instance. *)
  Vtpm_util.Cost.charge (Host.cost host) 50_000.0;
  Supervisor.tick sup;
  check_i "no breaker trip" 0 (Supervisor.breaker_opens sup);
  check_i "no quarantine" 0 (Supervisor.quarantines sup);
  check_b "entry stays healthy" true (Supervisor.health sup g.Host.vtpm_id = Supervisor.Healthy);
  match Manager.find host.Host.mgr g.Host.vtpm_id with
  | Ok inst -> check_b "still suspended" true (inst.Manager.state = Manager.Suspended)
  | Error e -> Alcotest.fail (Vtpm_util.Verror.to_string e)

let test_restore_refuses_suspended () =
  let host, g, _sup, _faults = supervised_fixture () in
  let ckpt = Checkpoint.create host.Host.mgr in
  (match Checkpoint.checkpoint_all ckpt with Ok () -> () | Error e -> Alcotest.fail e);
  (match Host.suspend_vtpm host g with Ok () -> () | Error e -> Alcotest.fail e);
  (* The saved blob is authoritative while suspended; a checkpoint restore
     would roll acknowledged state back. *)
  (match Checkpoint.restore_instance ckpt ~vtpm_id:g.Host.vtpm_id with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "restore must refuse a suspended instance");
  (match Manager.find host.Host.mgr g.Host.vtpm_id with
  | Ok inst -> check_b "still suspended" true (inst.Manager.state = Manager.Suspended)
  | Error e -> Alcotest.fail (Vtpm_util.Verror.to_string e));
  (* After resume the instance is live again and restore applies as usual. *)
  (match Host.resume_vtpm host g with Ok () -> () | Error e -> Alcotest.fail e);
  check_b "restore ok after resume" true
    (Checkpoint.restore_instance ckpt ~vtpm_id:g.Host.vtpm_id = Ok ())

let test_destroyed_instance_not_resurrected () =
  let host, g, sup, _faults = supervised_fixture ~cfg:(wedge_cfg ()) () in
  (* A teardown path that skips Supervisor.forget: the instance is gone
     from the manager but its checkpoint lingers. Repeated requests must
     keep failing with No_such (threshold 1 would trip on the first
     counted failure) — never restore the instance from the stale
     checkpoint. *)
  Manager.destroy_instance host.Host.mgr g.Host.vtpm_id;
  for _ = 1 to 5 do
    match Supervisor.execute sup ~vtpm_id:g.Host.vtpm_id ~wire:pcr7_read_wire with
    | Error (Vtpm_util.Verror.No_such _) -> ()
    | Ok _ -> Alcotest.fail "destroyed instance must not serve"
    | Error e -> Alcotest.failf "wrong error: %s" (Vtpm_util.Verror.to_string e)
  done;
  check_i "no breaker trip" 0 (Supervisor.breaker_opens sup);
  check_i "no quarantine" 0 (Supervisor.quarantines sup);
  check_b "not resurrected" true (Result.is_error (Manager.find host.Host.mgr g.Host.vtpm_id))

(* --- Monitor integration: audit reasons ----------------------------------------- *)

let audit_reasons m =
  List.map (fun (e : Audit.entry) -> e.Audit.reason) (Audit.entries m.Monitor.audit)

let test_audit_reasons_overloaded_and_shed () =
  let host, g1, _ = two_guest_host () in
  let b = host.Host.backend in
  let m = Host.monitor_exn host in
  Driver.set_overload b (Some { Driver.queue_capacity = 1; deadline_us = 1_000.0 });
  Monitor.wire_backpressure m b;
  check_b "fits" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  check_b "rejected" true (Driver.submit b g1.Host.conn ~wire:read_wire () <> Ok ());
  Vtpm_util.Cost.charge (Host.cost host) 2_000.0;
  check_b "resubmit after shed" true (Driver.submit b g1.Host.conn ~wire:read_wire () = Ok ());
  let reasons = audit_reasons m in
  check_b "overloaded audited" true (List.mem "overloaded" reasons);
  check_b "shed audited" true (List.mem "shed-deadline" reasons);
  check_i "stats overloaded" 1 (Monitor.stats m).Monitor.overloaded;
  check_i "stats shed" 1 (Monitor.stats m).Monitor.shed

let test_audit_reasons_supervision () =
  let host, g, sup, _faults = supervised_fixture ~rate:1.0 ~cfg:(wedge_cfg ()) () in
  let m = Host.monitor_exn host in
  Monitor.set_supervisor m sup;
  (* Route a guest request through the monitor: the wedge fires on the
     supervised path and the events land in the audit log. *)
  let client = Host.guest_client host g in
  ignore (Vtpm_tpm.Client.pcr_read client ~pcr:7);
  let reasons = audit_reasons m in
  check_b "quarantine audited" true (List.mem "quarantine" reasons);
  check_b "breaker-open audited" true (List.mem "breaker-open" reasons);
  check_b "degraded read audited" true (List.mem "degraded-read" reasons)

(* --- Flood and wedge-drill acceptance -------------------------------------------- *)

let test_flood_full_stack_holds () =
  let r =
    Experiments.flood_run ~config:Experiments.Full_stack ~flood_x:10 ~victim_ops:60 ~seed:61 ()
  in
  check_b
    (Printf.sprintf "full stack goodput %.1f%% >= 90%%" r.Experiments.victim_goodput_pct)
    true
    (r.Experiments.victim_goodput_pct >= 90.0);
  check_b "attacker contained" true (r.Experiments.attacker_rejected > 0)

let test_flood_naive_collapses () =
  let r =
    Experiments.flood_run ~config:Experiments.Naive ~flood_x:10 ~victim_ops:60 ~seed:61 ()
  in
  check_b
    (Printf.sprintf "naive goodput %.1f%% < 50%%" r.Experiments.victim_goodput_pct)
    true
    (r.Experiments.victim_goodput_pct < 50.0);
  check_i "attacker unthrottled" 600 r.Experiments.attacker_served

let test_flood_deterministic () =
  let run () =
    Experiments.flood_run ~config:Experiments.Full_stack ~flood_x:5 ~victim_ops:40 ~seed:17 ()
  in
  check_b "same seed same row" true (run () = run ())

let test_wedge_drill_recovers () =
  let d = Experiments.wedge_drill ~requests:100 ~seed:97 () in
  check_b "wedges injected" true (d.Experiments.wd_wedges > 0);
  check_b "quarantines happened" true (d.Experiments.wd_quarantines > 0);
  check_b "restarts happened" true (d.Experiments.wd_restarts > 0);
  check_b "reads served while degraded" true (d.Experiments.wd_degraded_reads > 0);
  check_b "mutations refused while degraded" true (d.Experiments.wd_degraded_rejects > 0);
  check_b "no acked extend lost" true d.Experiments.wd_state_preserved;
  check_b "deterministic" true (Experiments.wedge_drill ~requests:100 ~seed:97 () = d)

let suite =
  [
    Alcotest.test_case "quota: zero-rate bucket" `Quick test_quota_zero_rate;
    Alcotest.test_case "quota: refill across time jumps" `Quick test_quota_refill_across_time_jumps;
    Alcotest.test_case "quota: remaining monotone" `Quick test_quota_remaining_monotone;
    Alcotest.test_case "quota: forget drops buckets" `Quick test_quota_forget_teardown;
    Alcotest.test_case "audit: rotation bounds retention" `Quick test_audit_rotation_bounds_retention;
    Alcotest.test_case "audit: rotation keeps chain valid" `Quick test_audit_rotation_keeps_chain_valid;
    Alcotest.test_case "audit: uncapped log unchanged" `Quick test_audit_uncapped_unchanged;
    Alcotest.test_case "driver: naive queue unbounded" `Quick test_naive_queue_unbounded;
    Alcotest.test_case "driver: capacity rejection + retry hint" `Quick
      test_capacity_rejection_with_retry_hint;
    Alcotest.test_case "driver: deadline shed oldest first" `Quick test_deadline_shed_oldest_first;
    Alcotest.test_case "driver: round-robin service under policy" `Quick
      test_pump_round_robin_under_policy;
    Alcotest.test_case "driver: arrival order naive" `Quick test_pump_arrival_order_naive;
    Alcotest.test_case "teardown: destroy guest drops queue + quota" `Quick
      test_destroy_guest_drops_queue_and_quota;
    Alcotest.test_case "supervisor: trip, quarantine, restore, close" `Quick
      test_breaker_trip_quarantine_restore;
    Alcotest.test_case "supervisor: isolation after restart budget" `Quick
      test_isolation_after_restart_budget;
    Alcotest.test_case "supervisor: write-through preserves acked state" `Quick
      test_write_through_preserves_acked_state;
    Alcotest.test_case "supervisor: read-only classifications agree" `Quick
      test_read_only_classifications_agree;
    Alcotest.test_case "supervisor: forget resets entry" `Quick test_supervisor_forget;
    Alcotest.test_case "supervisor: suspended is not a health failure" `Quick
      test_suspended_is_not_a_health_failure;
    Alcotest.test_case "checkpoint: restore refuses suspended" `Quick
      test_restore_refuses_suspended;
    Alcotest.test_case "supervisor: destroyed instance stays destroyed" `Quick
      test_destroyed_instance_not_resurrected;
    Alcotest.test_case "monitor: overload + shed audit reasons" `Quick
      test_audit_reasons_overloaded_and_shed;
    Alcotest.test_case "monitor: supervision audit reasons" `Quick test_audit_reasons_supervision;
    Alcotest.test_case "flood: full stack holds at 10x" `Slow test_flood_full_stack_holds;
    Alcotest.test_case "flood: naive collapses at 10x" `Slow test_flood_naive_collapses;
    Alcotest.test_case "flood: deterministic" `Slow test_flood_deterministic;
    Alcotest.test_case "wedge drill: quarantine + degraded service + recovery" `Slow
      test_wedge_drill_recovers;
  ]
