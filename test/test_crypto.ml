(* Tests for the crypto substrate: hash vectors from FIPS/RFC documents,
   bignum arithmetic identities (many property-based), RSA and XTEA. *)

open Vtpm_crypto

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* --- SHA-1 (FIPS 180-4 / RFC 3174 vectors) --------------------------------- *)

let test_sha1_vectors () =
  check_s "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (Sha1.hexdigest "");
  check_s "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (Sha1.hexdigest "abc");
  check_s "448 bits" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (Sha1.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
  check_s "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (Sha1.hexdigest (String.make 1_000_000 'a'))

let test_sha1_incremental () =
  let whole = Sha1.digest "the quick brown fox jumps over the lazy dog" in
  let ctx = Sha1.init () in
  Sha1.feed ctx "the quick brown ";
  Sha1.feed ctx "fox jumps over";
  Sha1.feed ctx " the lazy dog";
  check_s "chunked = one-shot" (Vtpm_util.Hex.encode whole) (Vtpm_util.Hex.encode (Sha1.finalize ctx))

let test_sha1_block_boundaries () =
  (* Lengths around the 64-byte block and 56-byte padding boundary. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let ctx = Sha1.init () in
      String.iter (fun c -> Sha1.feed ctx (String.make 1 c)) s;
      check_s
        (Printf.sprintf "len %d" n)
        (Vtpm_util.Hex.encode (Sha1.digest s))
        (Vtpm_util.Hex.encode (Sha1.finalize ctx)))
    [ 0; 1; 55; 56; 57; 63; 64; 65; 127; 128; 129 ]

(* --- SHA-256 ------------------------------------------------------------------ *)

let test_sha256_vectors () =
  check_s "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (Sha256.hexdigest "");
  check_s "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Sha256.hexdigest "abc");
  check_s "448 bits" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (Sha256.hexdigest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")

let test_sha256_incremental () =
  let data = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let ctx = Sha256.init () in
  let i = ref 0 in
  while !i < String.length data do
    let n = min 37 (String.length data - !i) in
    Sha256.feed ctx (String.sub data !i n);
    i := !i + n
  done;
  check_s "chunked = one-shot"
    (Vtpm_util.Hex.encode (Sha256.digest data))
    (Vtpm_util.Hex.encode (Sha256.finalize ctx))

(* --- HMAC (RFC 2202 / RFC 4231) -------------------------------------------------- *)

let test_hmac_sha1_vectors () =
  check_s "rfc2202 tc1" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Vtpm_util.Hex.encode (Hmac.sha1_mac ~key:(String.make 20 '\x0b') "Hi There"));
  check_s "rfc2202 tc2" "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"
    (Vtpm_util.Hex.encode (Hmac.sha1_mac ~key:"Jefe" "what do ya want for nothing?"));
  (* Key longer than the block size exercises the key-hashing path. *)
  check_s "rfc2202 tc6" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Vtpm_util.Hex.encode
       (Hmac.sha1_mac ~key:(String.make 80 '\xaa') "Test Using Larger Than Block-Size Key - Hash Key First"))

let test_hmac_sha256_vector () =
  check_s "rfc4231 tc2" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Vtpm_util.Hex.encode (Hmac.sha256_mac ~key:"Jefe" "what do ya want for nothing?"))

let test_hmac_equal_ct () =
  check_b "equal" true (Hmac.equal_ct "abc" "abc");
  check_b "different" false (Hmac.equal_ct "abc" "abd");
  check_b "length mismatch" false (Hmac.equal_ct "abc" "abcd");
  check_b "empty" true (Hmac.equal_ct "" "")

(* --- Context reuse (reset + scratch one-shot path) -------------------------------- *)

(* A reset context must behave exactly like a fresh one — the one-shot
   [digest] now reuses a module-level scratch context through this path. *)
let test_sha_ctx_reset_reuse () =
  let ctx1 = Sha1.init () in
  Sha1.feed ctx1 "poison the state";
  ignore (Sha1.finalize ctx1);
  Sha1.reset ctx1;
  Sha1.feed ctx1 "abc";
  check_s "sha1 reset = fresh" "a9993e364706816aba3e25717850c26c9cd0d89d"
    (Vtpm_util.Hex.encode (Sha1.finalize ctx1));
  (* Reset mid-feed, before finalize, discards buffered input too. *)
  Sha1.reset ctx1;
  Sha1.feed ctx1 (String.make 70 'z');
  Sha1.reset ctx1;
  Sha1.feed ctx1 "abc";
  check_s "sha1 reset discards partial input" "a9993e364706816aba3e25717850c26c9cd0d89d"
    (Vtpm_util.Hex.encode (Sha1.finalize ctx1));
  let ctx2 = Sha256.init () in
  Sha256.feed ctx2 (String.make 130 'q');
  ignore (Sha256.finalize ctx2);
  Sha256.reset ctx2;
  Sha256.feed ctx2 "abc";
  check_s "sha256 reset = fresh" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (Vtpm_util.Hex.encode (Sha256.finalize ctx2))

(* Interleaved one-shot digests and incremental contexts must not clobber
   each other: [digest] uses a private scratch context. *)
let test_sha_scratch_isolation () =
  let ctx = Sha256.init () in
  Sha256.feed ctx "hello ";
  let _ = Sha256.digest (String.make 200 'w') in
  Sha256.feed ctx "world";
  check_s "incremental unaffected by one-shot"
    (Vtpm_util.Hex.encode (Sha256.digest "hello world"))
    (Vtpm_util.Hex.encode (Sha256.finalize ctx));
  let ctx1 = Sha1.init () in
  Sha1.feed ctx1 "hello ";
  let _ = Sha1.digest "interleaved" in
  Sha1.feed ctx1 "world";
  check_s "sha1 incremental unaffected"
    (Vtpm_util.Hex.encode (Sha1.digest "hello world"))
    (Vtpm_util.Hex.encode (Sha1.finalize ctx1))

(* Precomputed HMAC pads: [mac_prekeyed (derive h ~key)] == [mac h ~key]
   across short, block-sized and longer-than-block keys. *)
let prop_hmac_prekeyed_matches_plain =
  QCheck.Test.make ~name:"hmac prekeyed == plain" ~count:200
    (QCheck.pair QCheck.string QCheck.string)
    (fun (key, msg) ->
      String.equal (Hmac.mac_prekeyed (Hmac.sha1_prekey ~key) msg) (Hmac.sha1_mac ~key msg)
      && String.equal
           (Hmac.mac_prekeyed (Hmac.sha256_prekey ~key) msg)
           (Hmac.sha256_mac ~key msg))

let test_hmac_prekeyed_vectors () =
  (* The RFC vectors again, through the precomputed-pad path; the 80-byte
     key exercises the long-key pre-hash inside [derive]. *)
  check_s "rfc2202 tc1 prekeyed" "b617318655057264e28bc0b6fb378c8ef146be00"
    (Vtpm_util.Hex.encode
       (Hmac.mac_prekeyed (Hmac.sha1_prekey ~key:(String.make 20 '\x0b')) "Hi There"));
  check_s "rfc2202 tc6 prekeyed" "aa4ae5e15272d00e95705637ce8a3b55ed402112"
    (Vtpm_util.Hex.encode
       (Hmac.mac_prekeyed
          (Hmac.sha1_prekey ~key:(String.make 80 '\xaa'))
          "Test Using Larger Than Block-Size Key - Hash Key First"));
  let pk = Hmac.sha256_prekey ~key:"Jefe" in
  check_s "rfc4231 tc2 prekeyed" "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
    (Vtpm_util.Hex.encode (Hmac.mac_prekeyed pk "what do ya want for nothing?"));
  (* One prekey, many messages — the amortized use pattern. *)
  List.iter
    (fun msg ->
      check_s ("reused prekey: " ^ msg)
        (Vtpm_util.Hex.encode (Hmac.sha256_mac ~key:"Jefe" msg))
        (Vtpm_util.Hex.encode (Hmac.mac_prekeyed pk msg)))
    [ ""; "a"; String.make 100 'b' ]

(* --- Bignum ------------------------------------------------------------------------ *)

let bn = Bignum.of_int
let bn_int a = Option.get (Bignum.to_int_opt a)

let test_bignum_basics () =
  check_b "zero is zero" true (Bignum.is_zero Bignum.zero);
  check_i "of/to int" 123456789 (bn_int (bn 123456789));
  check_i "num_bits 0" 0 (Bignum.num_bits Bignum.zero);
  check_i "num_bits 1" 1 (Bignum.num_bits Bignum.one);
  check_i "num_bits 255" 8 (Bignum.num_bits (bn 255));
  check_i "num_bits 256" 9 (Bignum.num_bits (bn 256))

let test_bignum_compare () =
  check_i "eq" 0 (Bignum.compare (bn 42) (bn 42));
  check_b "lt" true (Bignum.compare (bn 41) (bn 42) < 0);
  check_b "gt" true (Bignum.compare (bn 43) (bn 42) > 0);
  check_b "wide gt" true (Bignum.compare (Bignum.shift_left Bignum.one 100) (bn max_int) > 0)

let test_bignum_add_sub () =
  let a = bn 0x3FFFFFFF and b = bn 1 in
  check_i "carry across limb" 0x40000000 (bn_int (Bignum.add a b));
  check_i "sub" 0x3FFFFFFF (bn_int (Bignum.sub (bn 0x40000000) (bn 1)));
  Alcotest.check_raises "underflow" (Invalid_argument "Bignum.sub: underflow") (fun () ->
      ignore (Bignum.sub (bn 1) (bn 2)))

let test_bignum_mul_div () =
  let a = bn 123456789 and b = bn 987654321 in
  check_i "mul" (123456789 * 987654321) (bn_int (Bignum.mul a b));
  let q, r = Bignum.divmod (bn 1000000007) (bn 97) in
  check_i "quot" (1000000007 / 97) (bn_int q);
  check_i "rem" (1000000007 mod 97) (bn_int r);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Bignum.divmod (bn 1) Bignum.zero))

let test_bignum_shifts () =
  check_i "shl" (1 lsl 40) (bn_int (Bignum.shift_left Bignum.one 40));
  check_i "shr" 1 (bn_int (Bignum.shift_right (Bignum.shift_left Bignum.one 40) 40));
  check_b "shr to zero" true (Bignum.is_zero (Bignum.shift_right (bn 5) 10))

let test_bignum_test_bit () =
  let v = bn 0b1010 in
  check_b "bit 1" true (Bignum.test_bit v 1);
  check_b "bit 0" false (Bignum.test_bit v 0);
  check_b "bit 3" true (Bignum.test_bit v 3);
  check_b "beyond width" false (Bignum.test_bit v 100)

let test_bignum_mod_pow () =
  (* Fermat: a^(p-1) = 1 mod p for prime p *)
  let p = bn 1000000007 in
  check_i "fermat" 1 (bn_int (Bignum.mod_pow ~modulus:p (bn 12345) (bn 1000000006)));
  check_i "2^100 mod p" 976371285 (bn_int (Bignum.mod_pow ~modulus:p (bn 2) (bn 100)));
  check_i "x^0" 1 (bn_int (Bignum.mod_pow ~modulus:p (bn 5) Bignum.zero));
  check_b "mod 1" true (Bignum.is_zero (Bignum.mod_pow ~modulus:Bignum.one (bn 5) (bn 3)))

let test_bignum_mod_inverse () =
  (match Bignum.mod_inverse ~modulus:(bn 97) (bn 31) with
  | Some inv -> check_i "31 * inv = 1 mod 97" 1 (bn_int (Bignum.mod_mul (bn 97) (bn 31) inv))
  | None -> Alcotest.fail "inverse must exist");
  check_b "no inverse when not coprime" true (Bignum.mod_inverse ~modulus:(bn 12) (bn 8) = None)

let test_bignum_bytes_roundtrip () =
  let v = Bignum.of_bytes_be "\x01\x02\x03\x04\x05\x06\x07\x08\x09" in
  check_s "roundtrip" "\x01\x02\x03\x04\x05\x06\x07\x08\x09" (Bignum.to_bytes_be v);
  check_s "zero" "\x00" (Bignum.to_bytes_be Bignum.zero);
  check_s "padded" "\x00\x00\x2a" (Bignum.to_bytes_be_padded (bn 42) ~width:3);
  (* Leading zero bytes in the input are dropped canonically on re-encode. *)
  check_s "canonical" "\x2a" (Bignum.to_bytes_be (Bignum.of_bytes_be "\x00\x00\x2a"))

let test_bignum_primality () =
  let rng = Vtpm_util.Rng.create ~seed:17 in
  List.iter
    (fun p -> check_b (Printf.sprintf "%d prime" p) true (Bignum.is_probable_prime rng (bn p)))
    [ 2; 3; 5; 97; 7919; 1000000007; 2147483647 ];
  List.iter
    (fun c -> check_b (Printf.sprintf "%d composite" c) false (Bignum.is_probable_prime rng (bn c)))
    [ 0; 1; 4; 100; 7917; 1000000008; 561 (* Carmichael *); 41041 (* Carmichael *) ]

let test_bignum_random_prime () =
  let rng = Vtpm_util.Rng.create ~seed:23 in
  let p = Bignum.random_prime rng ~bits:64 in
  check_i "exact bit width" 64 (Bignum.num_bits p);
  check_b "is prime" true (Bignum.is_probable_prime rng p)

let test_bignum_gcd () =
  check_i "gcd" 6 (bn_int (Bignum.gcd (bn 48) (bn 18)));
  check_i "gcd coprime" 1 (bn_int (Bignum.gcd (bn 35) (bn 64)));
  check_i "gcd with zero" 42 (bn_int (Bignum.gcd (bn 42) Bignum.zero))

(* Bignum properties, checked against native int arithmetic. *)

let small = QCheck.int_range 0 1_000_000_000

let prop_add_commutes =
  QCheck.Test.make ~name:"bignum add commutes" ~count:300 (QCheck.pair small small)
    (fun (a, b) -> Bignum.equal (Bignum.add (bn a) (bn b)) (Bignum.add (bn b) (bn a)))

let prop_add_matches_int =
  QCheck.Test.make ~name:"bignum add = int add" ~count:300 (QCheck.pair small small)
    (fun (a, b) -> bn_int (Bignum.add (bn a) (bn b)) = a + b)

let prop_mul_matches_int =
  QCheck.Test.make ~name:"bignum mul = int mul" ~count:300
    (QCheck.pair (QCheck.int_range 0 1_000_000) (QCheck.int_range 0 1_000_000))
    (fun (a, b) -> bn_int (Bignum.mul (bn a) (bn b)) = a * b)

let prop_divmod_identity =
  QCheck.Test.make ~name:"a = q*b + r, r < b" ~count:300
    (QCheck.pair small (QCheck.int_range 1 1_000_000))
    (fun (a, b) ->
      let q, r = Bignum.divmod (bn a) (bn b) in
      Bignum.equal (bn a) (Bignum.add (Bignum.mul q (bn b)) r) && Bignum.compare r (bn b) < 0)

let prop_bytes_roundtrip =
  QCheck.Test.make ~name:"bignum bytes roundtrip" ~count:300 small (fun a ->
      bn_int (Bignum.of_bytes_be (Bignum.to_bytes_be (bn a))) = a)

let prop_shift_mul =
  QCheck.Test.make ~name:"shl k = mul 2^k" ~count:200
    (QCheck.pair (QCheck.int_range 0 100000) (QCheck.int_range 0 40))
    (fun (a, k) ->
      Bignum.equal (Bignum.shift_left (bn a) k) (Bignum.mul (bn a) (Bignum.shift_left Bignum.one k)))

(* Large-operand identities: operands built from random byte strings, far
   beyond native int range. *)

let gen_big = QCheck.Gen.(map Bignum.of_bytes_be (string_size (int_range 1 64)))

let prop_big_add_sub_inverse =
  QCheck.Test.make ~name:"big (a+b)-b = a" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_big gen_big))
    (fun (a, b) -> Bignum.equal (Bignum.sub (Bignum.add a b) b) a)

let prop_big_divmod_identity =
  QCheck.Test.make ~name:"big a = q*b + r" ~count:200
    (QCheck.make QCheck.Gen.(pair gen_big gen_big))
    (fun (a, b) ->
      if Bignum.is_zero b then true
      else begin
        let q, r = Bignum.divmod a b in
        Bignum.equal a (Bignum.add (Bignum.mul q b) r) && Bignum.compare r b < 0
      end)

let prop_big_mul_distributes =
  QCheck.Test.make ~name:"big a*(b+c) = a*b + a*c" ~count:150
    (QCheck.make QCheck.Gen.(triple gen_big gen_big gen_big))
    (fun (a, b, c) ->
      Bignum.equal (Bignum.mul a (Bignum.add b c)) (Bignum.add (Bignum.mul a b) (Bignum.mul a c)))

let prop_big_bytes_roundtrip =
  QCheck.Test.make ~name:"big bytes roundtrip (canonical)" ~count:200 (QCheck.make gen_big)
    (fun a -> Bignum.equal (Bignum.of_bytes_be (Bignum.to_bytes_be a)) a)

let prop_big_modpow_split =
  (* a^(e1+e2) = a^e1 * a^e2 (mod m), with m odd > 1. *)
  QCheck.Test.make ~name:"big modpow exponent additivity" ~count:60
    (QCheck.make
       QCheck.Gen.(
         quad gen_big
           (map Bignum.of_int (int_range 0 1000))
           (map Bignum.of_int (int_range 0 1000))
           (map (fun n -> Bignum.add (Bignum.of_int ((2 * n) + 3)) Bignum.zero) (int_range 1 1_000_000))))
    (fun (a, e1, e2, m) ->
      let lhs = Bignum.mod_pow ~modulus:m a (Bignum.add e1 e2) in
      let rhs = Bignum.mod_mul m (Bignum.mod_pow ~modulus:m a e1) (Bignum.mod_pow ~modulus:m a e2) in
      Bignum.equal lhs rhs)

(* --- RSA ------------------------------------------------------------------------------ *)

let rsa_key = lazy (Rsa.generate ~bits:256 (Vtpm_util.Rng.create ~seed:31))

let test_rsa_sign_verify () =
  let key = Lazy.force rsa_key in
  let digest = Sha1.digest "message" in
  let s = Rsa.sign key ~digest in
  check_i "signature width" (Rsa.modulus_bytes key.pub) (String.length s);
  check_b "verifies" true (Rsa.verify key.pub ~digest ~signature:s);
  check_b "wrong digest" false (Rsa.verify key.pub ~digest:(Sha1.digest "other") ~signature:s)

let test_rsa_signature_tamper () =
  let key = Lazy.force rsa_key in
  let digest = Sha1.digest "message" in
  let s = Bytes.of_string (Rsa.sign key ~digest) in
  Bytes.set s 3 (Char.chr (Char.code (Bytes.get s 3) lxor 1));
  check_b "tampered fails" false (Rsa.verify key.pub ~digest ~signature:(Bytes.to_string s))

let test_rsa_encrypt_decrypt () =
  let key = Lazy.force rsa_key in
  let rng = Vtpm_util.Rng.create ~seed:37 in
  let ct = Rsa.encrypt rng key.pub "hello" in
  check_b "decrypts" true (Rsa.decrypt key ct = Some "hello");
  (* Random padding: two encryptions of the same message differ. *)
  let ct2 = Rsa.encrypt rng key.pub "hello" in
  check_b "probabilistic" true (ct <> ct2);
  check_b "both decrypt" true (Rsa.decrypt key ct2 = Some "hello")

let test_rsa_decrypt_garbage () =
  let key = Lazy.force rsa_key in
  check_b "wrong width" true (Rsa.decrypt key "short" = None);
  let garbage = String.make (Rsa.modulus_bytes key.pub) '\x01' in
  check_b "garbage" true (Rsa.decrypt key garbage = None)

let test_rsa_public_roundtrip () =
  let key = Lazy.force rsa_key in
  match Rsa.public_of_bytes (Rsa.public_to_bytes key.pub) with
  | Some pub ->
      check_b "n" true (Bignum.equal pub.Rsa.n key.pub.Rsa.n);
      check_b "e" true (Bignum.equal pub.Rsa.e key.pub.Rsa.e);
      check_i "bits" key.pub.Rsa.bits pub.Rsa.bits
  | None -> Alcotest.fail "roundtrip failed"

let test_rsa_cross_key () =
  let k1 = Lazy.force rsa_key in
  let k2 = Rsa.generate ~bits:256 (Vtpm_util.Rng.create ~seed:41) in
  let digest = Sha1.digest "m" in
  let s = Rsa.sign k1 ~digest in
  check_b "other key rejects" false (Rsa.verify k2.pub ~digest ~signature:s)

(* --- XTEA ------------------------------------------------------------------------------ *)

let xtea_key = Xtea.key_of_string (String.init 16 Char.chr)

let test_xtea_roundtrip () =
  List.iter
    (fun n ->
      let msg = String.init n (fun i -> Char.chr ((i * 7) land 0xff)) in
      let ct = Xtea.ctr_transform xtea_key ~nonce:5 msg in
      check_s (Printf.sprintf "len %d" n) msg (Xtea.ctr_transform xtea_key ~nonce:5 ct))
    [ 0; 1; 7; 8; 9; 16; 100; 4096 ]

let test_xtea_nonce_matters () =
  let msg = String.make 64 'm' in
  let a = Xtea.ctr_transform xtea_key ~nonce:1 msg in
  let b = Xtea.ctr_transform xtea_key ~nonce:2 msg in
  check_b "distinct streams" true (a <> b)

let test_xtea_key_matters () =
  let msg = String.make 64 'm' in
  let k2 = Xtea.key_of_string (String.make 16 'k') in
  check_b "distinct keys" true
    (Xtea.ctr_transform xtea_key ~nonce:1 msg <> Xtea.ctr_transform k2 ~nonce:1 msg)

let test_xtea_bad_key () =
  Alcotest.check_raises "short key" (Invalid_argument "Xtea.key_of_string: need 16 bytes")
    (fun () -> ignore (Xtea.key_of_string "short"))

let prop_xtea_roundtrip =
  QCheck.Test.make ~name:"xtea ctr roundtrip" ~count:200
    (QCheck.pair QCheck.string QCheck.small_nat)
    (fun (msg, nonce) ->
      Xtea.ctr_transform xtea_key ~nonce (Xtea.ctr_transform xtea_key ~nonce msg) = msg)

(* --- DRBG ------------------------------------------------------------------------------- *)

let test_drbg_deterministic () =
  let a = Drbg.instantiate ~seed:"s" and b = Drbg.instantiate ~seed:"s" in
  check_s "same stream" (Drbg.generate a 48) (Drbg.generate b 48)

let test_drbg_seed_sensitivity () =
  let a = Drbg.instantiate ~seed:"s1" and b = Drbg.instantiate ~seed:"s2" in
  check_b "different" true (Drbg.generate a 32 <> Drbg.generate b 32)

let test_drbg_ratchets () =
  let d = Drbg.instantiate ~seed:"s" in
  let x = Drbg.generate d 32 in
  let y = Drbg.generate d 32 in
  check_b "outputs differ" true (x <> y)

let test_drbg_reseed () =
  let a = Drbg.instantiate ~seed:"s" and b = Drbg.instantiate ~seed:"s" in
  Drbg.reseed a ~entropy:"fresh";
  check_b "reseed changes stream" true (Drbg.generate a 32 <> Drbg.generate b 32)

let test_drbg_lengths () =
  let d = Drbg.instantiate ~seed:"s" in
  List.iter (fun n -> check_i (Printf.sprintf "%d bytes" n) n (String.length (Drbg.generate d n)))
    [ 1; 20; 32; 33; 64; 100 ]

(* --- Crypto hot-path differentials (PR 10) ----------------------------------
   The Montgomery/CRT/word-level rewrites must be bit-identical to the
   simple paths they replaced. Each optimized route is tested against its
   slow reference on random inputs, and golden fixtures pin the exact
   signature bytes so a silent change to either route fails loudly. *)

let gen_odd_modulus =
  (* Odd modulus > 1, up to 512 bits: the Montgomery-eligible case. *)
  QCheck.Gen.(
    map
      (fun s ->
        let m = Bignum.of_bytes_be s in
        let m = if Bignum.is_even m then Bignum.add m Bignum.one else m in
        if Bignum.compare m Bignum.one <= 0 then Bignum.of_int 3 else m)
      (string_size (int_range 1 64)))

let prop_montgomery_matches_schoolbook =
  QCheck.Test.make ~name:"montgomery mod_pow == schoolbook" ~count:120
    (QCheck.make QCheck.Gen.(triple gen_big gen_big gen_odd_modulus))
    (fun (base, exp, m) ->
      Bignum.equal
        (Bignum.mod_pow ~modulus:m base exp)
        (Bignum.mod_pow_schoolbook ~modulus:m base exp))

let rsa_key512 = lazy (Rsa.generate ~bits:512 (Vtpm_util.Rng.create ~seed:99))

let prop_crt_sign_matches_plain =
  QCheck.Test.make ~name:"crt sign == no-crt sign" ~count:40
    (QCheck.make QCheck.Gen.(pair bool (string_size (return 20))))
    (fun (big, digest) ->
      let key = Lazy.force (if big then rsa_key512 else rsa_key) in
      Rsa.sign key ~digest = Rsa.sign_no_crt key ~digest)

let feed_in_chunks feed finalize ctx s cuts =
  (* Split [s] at the (sorted, deduped) cut points and stream the pieces. *)
  let cuts = List.sort_uniq compare (List.map (fun c -> c mod (String.length s + 1)) cuts) in
  let prev = ref 0 in
  List.iter
    (fun c ->
      if c > !prev then feed ctx s ~off:!prev ~len:(c - !prev);
      prev := max !prev c)
    (cuts @ [ String.length s ]);
  finalize ctx

let prop_sha1_stream_split =
  QCheck.Test.make ~name:"sha1 chunked feed_sub == one-shot" ~count:80
    (QCheck.make QCheck.Gen.(pair (string_size (int_range 0 4096)) (list_size (int_range 0 8) nat)))
    (fun (s, cuts) ->
      feed_in_chunks Sha1.feed_sub Sha1.finalize (Sha1.init ()) s cuts = Sha1.digest s)

let prop_sha256_stream_split =
  QCheck.Test.make ~name:"sha256 chunked feed_sub == one-shot" ~count:80
    (QCheck.make QCheck.Gen.(pair (string_size (int_range 0 4096)) (list_size (int_range 0 8) nat)))
    (fun (s, cuts) ->
      feed_in_chunks Sha256.feed_sub Sha256.finalize (Sha256.init ()) s cuts = Sha256.digest s)

let prop_digest_concat =
  QCheck.Test.make ~name:"digest_concat == digest of concatenation" ~count:80
    (QCheck.make QCheck.Gen.(list_size (int_range 0 6) (string_size (int_range 0 200))))
    (fun parts ->
      let whole = String.concat "" parts in
      Sha1.digest_concat parts = Sha1.digest whole
      && Sha256.digest_concat parts = Sha256.digest whole)

let hmac_reference hash block ~key msg =
  (* RFC 2104 by the book, via one-shot digests and staging strings —
     the naive construction the streaming implementation replaced. *)
  let key = if String.length key > block then hash [ key ] else key in
  let pad = key ^ String.make (block - String.length key) '\x00' in
  let xor_with c = String.map (fun k -> Char.chr (Char.code k lxor c)) pad in
  hash [ xor_with 0x5c; hash [ xor_with 0x36; msg ] ]

let prop_hmac_matches_reference =
  QCheck.Test.make ~name:"streaming hmac == rfc2104 reference" ~count:80
    (QCheck.make QCheck.Gen.(pair (string_size (int_range 0 100)) (string_size (int_range 0 500))))
    (fun (key, msg) ->
      Hmac.sha1_mac ~key msg = hmac_reference Sha1.digest_concat 64 ~key msg
      && Hmac.sha256_mac ~key msg = hmac_reference Sha256.digest_concat 64 ~key msg)

let test_rsa_golden_signatures () =
  (* Captured from the pre-overhaul schoolbook signer: the Montgomery/CRT
     path must reproduce these bytes exactly. *)
  let digest = Sha1.digest "message" in
  check_s "sig256"
    "893d15cb879ec3db8976e2dd57d14cc80317e01358a7874376741a639fa91bc6"
    (Vtpm_util.Hex.encode (Rsa.sign (Lazy.force rsa_key) ~digest));
  check_s "sig512"
    "335261ee77eecf99607b44b6e6879aa0762141d68376092087463f23c7750b887b54e23afacf3245f267bbee0e1440139180cd935c8790b30238e5c8d14e760c"
    (Vtpm_util.Hex.encode (Rsa.sign (Lazy.force rsa_key512) ~digest));
  check_s "fp256" "659f4e08e8b8cbf01cefee22049ac78111196f9b"
    (Vtpm_util.Hex.encode (Rsa.fingerprint (Lazy.force rsa_key).Rsa.pub));
  check_s "fp512" "f47113e2efb32fa0522ac0cf30a59acdf9060ae3"
    (Vtpm_util.Hex.encode (Rsa.fingerprint (Lazy.force rsa_key512).Rsa.pub))

let test_rsa_key_codec_versions () =
  let key = Lazy.force rsa_key in
  let digest = Sha1.digest "codec" in
  let expect = Rsa.sign key ~digest in
  (* v2 (current) round trip preserves every CRT component. *)
  (match Rsa.key_of_bytes (Rsa.key_to_bytes key) with
  | None -> Alcotest.fail "v2 decode failed"
  | Some k ->
      check_b "v2 pub n" true (Bignum.equal k.Rsa.pub.Rsa.n key.Rsa.pub.Rsa.n);
      check_b "v2 dp" true (Bignum.equal k.Rsa.dp key.Rsa.dp);
      check_b "v2 dq" true (Bignum.equal k.Rsa.dq key.Rsa.dq);
      check_b "v2 qinv" true (Bignum.equal k.Rsa.qinv key.Rsa.qinv);
      check_s "v2 sig" (Vtpm_util.Hex.encode expect) (Vtpm_util.Hex.encode (Rsa.sign k ~digest)));
  (* v1 (pre-overhaul, no CRT fields) still decodes; the derived fields
     are recomputed so signatures stay identical. *)
  match Rsa.key_of_bytes (Rsa.key_to_bytes_v1 key) with
  | None -> Alcotest.fail "v1 decode failed"
  | Some k ->
      check_b "v1 p" true (Bignum.equal k.Rsa.p key.Rsa.p);
      check_b "v1 qinv recomputed" true (Bignum.equal k.Rsa.qinv key.Rsa.qinv);
      check_s "v1 sig" (Vtpm_util.Hex.encode expect) (Vtpm_util.Hex.encode (Rsa.sign k ~digest))

let test_montgomery_rejects_even () =
  check_b "even modulus rejected" true
    (try
       ignore (Bignum.Montgomery.ctx ~modulus:(Bignum.of_int 10));
       false
     with Invalid_argument _ -> true);
  (* mod_pow itself must still serve even moduli via the schoolbook path. *)
  check_b "mod_pow even fallback" true
    (Bignum.equal
       (Bignum.mod_pow ~modulus:(Bignum.of_int 10) (Bignum.of_int 7) (Bignum.of_int 3))
       (Bignum.of_int 3))

let suite =
  [
    Alcotest.test_case "sha1 vectors" `Quick test_sha1_vectors;
    Alcotest.test_case "sha1 incremental" `Quick test_sha1_incremental;
    Alcotest.test_case "sha1 block boundaries" `Quick test_sha1_block_boundaries;
    Alcotest.test_case "sha256 vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "sha256 incremental" `Quick test_sha256_incremental;
    Alcotest.test_case "hmac-sha1 vectors" `Quick test_hmac_sha1_vectors;
    Alcotest.test_case "hmac-sha256 vector" `Quick test_hmac_sha256_vector;
    Alcotest.test_case "hmac equal_ct" `Quick test_hmac_equal_ct;
    Alcotest.test_case "sha ctx reset/reuse" `Quick test_sha_ctx_reset_reuse;
    Alcotest.test_case "sha scratch isolation" `Quick test_sha_scratch_isolation;
    Alcotest.test_case "hmac prekeyed vectors" `Quick test_hmac_prekeyed_vectors;
    QCheck_alcotest.to_alcotest prop_hmac_prekeyed_matches_plain;
    Alcotest.test_case "bignum basics" `Quick test_bignum_basics;
    Alcotest.test_case "bignum compare" `Quick test_bignum_compare;
    Alcotest.test_case "bignum add/sub" `Quick test_bignum_add_sub;
    Alcotest.test_case "bignum mul/div" `Quick test_bignum_mul_div;
    Alcotest.test_case "bignum shifts" `Quick test_bignum_shifts;
    Alcotest.test_case "bignum test_bit" `Quick test_bignum_test_bit;
    Alcotest.test_case "bignum mod_pow" `Quick test_bignum_mod_pow;
    Alcotest.test_case "bignum mod_inverse" `Quick test_bignum_mod_inverse;
    Alcotest.test_case "bignum bytes roundtrip" `Quick test_bignum_bytes_roundtrip;
    Alcotest.test_case "bignum primality" `Quick test_bignum_primality;
    Alcotest.test_case "bignum random prime" `Quick test_bignum_random_prime;
    Alcotest.test_case "bignum gcd" `Quick test_bignum_gcd;
    QCheck_alcotest.to_alcotest prop_add_commutes;
    QCheck_alcotest.to_alcotest prop_add_matches_int;
    QCheck_alcotest.to_alcotest prop_mul_matches_int;
    QCheck_alcotest.to_alcotest prop_divmod_identity;
    QCheck_alcotest.to_alcotest prop_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_shift_mul;
    QCheck_alcotest.to_alcotest prop_big_add_sub_inverse;
    QCheck_alcotest.to_alcotest prop_big_divmod_identity;
    QCheck_alcotest.to_alcotest prop_big_mul_distributes;
    QCheck_alcotest.to_alcotest prop_big_bytes_roundtrip;
    QCheck_alcotest.to_alcotest prop_big_modpow_split;
    Alcotest.test_case "rsa sign/verify" `Quick test_rsa_sign_verify;
    Alcotest.test_case "rsa signature tamper" `Quick test_rsa_signature_tamper;
    Alcotest.test_case "rsa encrypt/decrypt" `Quick test_rsa_encrypt_decrypt;
    Alcotest.test_case "rsa decrypt garbage" `Quick test_rsa_decrypt_garbage;
    Alcotest.test_case "rsa public roundtrip" `Quick test_rsa_public_roundtrip;
    Alcotest.test_case "rsa cross key" `Quick test_rsa_cross_key;
    Alcotest.test_case "xtea roundtrip" `Quick test_xtea_roundtrip;
    Alcotest.test_case "xtea nonce matters" `Quick test_xtea_nonce_matters;
    Alcotest.test_case "xtea key matters" `Quick test_xtea_key_matters;
    Alcotest.test_case "xtea bad key" `Quick test_xtea_bad_key;
    QCheck_alcotest.to_alcotest prop_xtea_roundtrip;
    Alcotest.test_case "drbg deterministic" `Quick test_drbg_deterministic;
    Alcotest.test_case "drbg seed sensitivity" `Quick test_drbg_seed_sensitivity;
    Alcotest.test_case "drbg ratchets" `Quick test_drbg_ratchets;
    Alcotest.test_case "drbg reseed" `Quick test_drbg_reseed;
    Alcotest.test_case "drbg lengths" `Quick test_drbg_lengths;
    QCheck_alcotest.to_alcotest prop_montgomery_matches_schoolbook;
    QCheck_alcotest.to_alcotest prop_crt_sign_matches_plain;
    QCheck_alcotest.to_alcotest prop_sha1_stream_split;
    QCheck_alcotest.to_alcotest prop_sha256_stream_split;
    QCheck_alcotest.to_alcotest prop_digest_concat;
    QCheck_alcotest.to_alcotest prop_hmac_matches_reference;
    Alcotest.test_case "rsa golden signatures" `Quick test_rsa_golden_signatures;
    Alcotest.test_case "rsa key codec versions" `Quick test_rsa_key_codec_versions;
    Alcotest.test_case "montgomery rejects even modulus" `Quick test_montgomery_rejects_even;
  ]
