(* Tests for the crash-consistent anchoring service and its Merkle
   batching: the tree itself, torn-commit repair at every crash
   boundary, retry under injected chip faults, breaker-driven deferral
   with bounded staleness, Merkle catch-up with inclusion proofs, and
   the freshness fail-closed contract. *)

open Vtpm_access
open Vtpm_mgr

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let sha s = Vtpm_crypto.Sha256.digest s
let verr = Vtpm_util.Verror.to_string

let contains s needle =
  let n = String.length needle and l = String.length s in
  let rec at i = i + n <= l && (String.equal (String.sub s i n) needle || at (i + 1)) in
  at 0

let rig ?cfg ~seed () =
  let host = Host.create ~mode:Host.Improved_mode ~seed ~rsa_bits:256 () in
  let m = Host.monitor_exn host in
  let mgr = host.Host.mgr in
  let ckpt = Checkpoint.create mgr in
  let anchor =
    match Anchor.setup mgr with
    | Ok a -> a
    | Error e -> Alcotest.failf "anchor setup: %s" (verr e)
  in
  let svc = Anchor_svc.create ?cfg ~ckpt mgr in
  Anchor_svc.set_audit svc (Some m.Monitor.audit);
  (host, m, mgr, ckpt, anchor, svc)

let commit_ok ?(what = "commit") svc slot data =
  match Anchor_svc.commit_sync svc slot ~data with
  | Ok c -> c
  | Error e -> Alcotest.failf "%s: %s" what (verr e)

(* --- Merkle tree ----------------------------------------------------------------- *)

let test_merkle_root_and_combines () =
  check_s "single leaf root is the leaf hash" (Merkle.leaf_hash "a") (Merkle.root [ "a" ]);
  check_i "combines 1" 0 (Merkle.combines 1);
  check_i "combines 2" 1 (Merkle.combines 2);
  check_i "combines 7" 6 (Merkle.combines 7);
  check_s "two-leaf root combines the leaf hashes"
    (Merkle.node_hash (Merkle.leaf_hash "a") (Merkle.leaf_hash "b"))
    (Merkle.root [ "a"; "b" ]);
  (* Domain separation: bytes that spell out an inner node's input can
     never hash to the inner node when presented as a leaf. *)
  check_b "leaf and node domains separated" true
    (Merkle.leaf_hash (Merkle.leaf_hash "a" ^ Merkle.leaf_hash "b")
    <> Merkle.node_hash (Merkle.leaf_hash "a") (Merkle.leaf_hash "b"));
  match Merkle.root [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty root accepted"

let test_merkle_proofs_every_size () =
  for n = 1 to 9 do
    let leaves = List.init n (Printf.sprintf "leaf-%d-%d" n) in
    let root = Merkle.root leaves in
    let proofs = Merkle.all_proofs leaves in
    check_i "one proof per leaf" n (Array.length proofs);
    List.iteri
      (fun i leaf ->
        check_b "all_proofs agrees with proof" true (proofs.(i) = Merkle.proof leaves ~index:i);
        check_b "inclusion proof verifies" true (Merkle.verify ~root ~leaf proofs.(i));
        check_b "wrong leaf rejected" true
          (not (Merkle.verify ~root ~leaf:"evil" proofs.(i)));
        check_b "wrong root rejected" true
          (not (Merkle.verify ~root:(sha "not-the-root") ~leaf proofs.(i))))
      leaves
  done;
  match Merkle.proof [ "a" ] ~index:1 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "out-of-range proof accepted"

(* --- Plain commits through the service -------------------------------------------- *)

let test_commit_sync_and_read () =
  let _host, _m, _mgr, _ckpt, anchor, svc = rig ~seed:5 () in
  let slot = Anchor.slot_of anchor in
  let d1 = sha "head-1" and d2 = sha "head-2" in
  let c1 = commit_ok ~what:"first" svc slot d1 in
  let c2 = commit_ok ~what:"second" svc slot d2 in
  check_b "counter advances" true (c2 > c1);
  (match Anchor_svc.read_slot svc slot ~length:Anchor.head_size with
  | Ok (bytes, c) ->
      check_s "latest head anchored" d2 bytes;
      check_i "read counter matches" c2 c
  | Error e -> Alcotest.failf "read_slot: %s" (verr e));
  check_b "healthy" true (Anchor_svc.health svc = Anchor_svc.Healthy);
  check_i "journal empty after clean commits" 0 (Anchor_svc.inflight svc);
  check_i "nothing deferred" 0 (Anchor_svc.queue_depth svc)

(* --- Torn-commit repair at every crash boundary ------------------------------------ *)

let boundaries =
  Anchor_svc.
    [
      (Before_nv_write, "before-nv-write");
      (After_nv_write, "after-nv-write");
      (After_journal_update, "after-journal-update");
      (After_increment, "after-increment");
    ]

let test_torn_commit_repair () =
  List.iter
    (fun (point, name) ->
      let _host, _m, mgr, ckpt, anchor, svc = rig ~seed:7 () in
      let slot = Anchor.slot_of anchor in
      let c0 = commit_ok ~what:(name ^ ": baseline") svc slot (sha ("baseline-" ^ name)) in
      let torn = sha ("torn-" ^ name) in
      Anchor_svc.set_power_loss_at svc (Some point);
      (match Anchor_svc.commit svc slot ~data:torn ~defer_ok:false with
      | exception Anchor_svc.Power_loss p ->
          check_b (name ^ ": cut at the scheduled point") true (p = point)
      | Ok _ | Error _ -> Alcotest.failf "%s: drill did not cut the power" name);
      (* Restart: a fresh service incarnation over the same checkpoint
         store must see the journaled intent and finish it forward. *)
      let svc2 = Anchor_svc.create ~ckpt mgr in
      check_i (name ^ ": journal survives restart") 1 (Anchor_svc.inflight svc2);
      (match Anchor_svc.recover svc2 with
      | Ok r ->
          check_i (name ^ ": one in-flight intent") 1 r.Anchor_svc.rp_inflight;
          check_i (name ^ ": accounted for") 1 (r.Anchor_svc.rp_repaired + r.Anchor_svc.rp_completed)
      | Error e -> Alcotest.failf "%s: recover: %s" name (verr e));
      check_i (name ^ ": journal clean after repair") 0 (Anchor_svc.inflight svc2);
      match Anchor_svc.read_slot svc2 slot ~length:Anchor.head_size with
      | Ok (bytes, c) ->
          check_s (name ^ ": torn head finished forward") torn bytes;
          check_b (name ^ ": counter never undercounts") true (c > c0)
      | Error e -> Alcotest.failf "%s: read after repair: %s" name (verr e))
    boundaries

let test_recover_is_idempotent () =
  let _host, _m, mgr, ckpt, anchor, svc = rig ~seed:19 () in
  let slot = Anchor.slot_of anchor in
  Anchor_svc.set_power_loss_at svc (Some Anchor_svc.After_nv_write);
  (try ignore (Anchor_svc.commit svc slot ~data:(sha "idem") ~defer_ok:false)
   with Anchor_svc.Power_loss _ -> ());
  let svc2 = Anchor_svc.create ~ckpt mgr in
  (match Anchor_svc.recover svc2 with
  | Ok r -> check_i "first pass repairs" 1 r.Anchor_svc.rp_inflight
  | Error e -> Alcotest.failf "recover: %s" (verr e));
  let counter_after =
    match Anchor_svc.read_slot svc2 slot ~length:Anchor.head_size with
    | Ok (_, c) -> c
    | Error e -> Alcotest.failf "read: %s" (verr e)
  in
  (match Anchor_svc.recover svc2 with
  | Ok r -> check_i "second pass finds nothing" 0 r.Anchor_svc.rp_inflight
  | Error e -> Alcotest.failf "recover again: %s" (verr e));
  match Anchor_svc.read_slot svc2 slot ~length:Anchor.head_size with
  | Ok (_, c) -> check_i "idempotent: counter untouched" counter_after c
  | Error e -> Alcotest.failf "read again: %s" (verr e)

(* --- Retry under injected chip faults ---------------------------------------------- *)

let test_transient_faults_ride_retry () =
  let _host, _m, mgr, _ckpt, anchor, svc = rig ~seed:9 () in
  let slot = Anchor.slot_of anchor in
  let f = Vtpm_xen.Faults.create ~seed:41 () in
  Manager.set_hw_faults mgr (Some f);
  Vtpm_xen.Faults.schedule f Vtpm_xen.Faults.Hw_busy;
  ignore (commit_ok ~what:"busy" svc slot (sha "rides-busy"));
  Vtpm_xen.Faults.schedule f Vtpm_xen.Faults.Hw_reset;
  ignore (commit_ok ~what:"reset" svc slot (sha "rides-reset"));
  let st = Anchor_svc.stats svc in
  check_b "retries recorded" true (st.Anchor_svc.st_retries > 0);
  check_b "service never went down" true (Anchor_svc.available svc);
  check_i "journal clean" 0 (Anchor_svc.inflight svc)

(* --- Breaker, deferral, Merkle catch-up -------------------------------------------- *)

let test_breaker_defers_and_catches_up () =
  let _host, m, mgr, _ckpt, anchor, svc = rig ~seed:11 () in
  let slot = Anchor.slot_of anchor in
  ignore (commit_ok ~what:"baseline" svc slot (sha "baseline"));
  Anchor_svc.force_down svc;
  check_b "down" true (Anchor_svc.health svc = Anchor_svc.Down);
  check_b "not available" true (not (Anchor_svc.available svc));
  (match Anchor_svc.commit svc slot ~data:(sha "no-defer") ~defer_ok:false with
  | Error (Vtpm_util.Verror.Unavailable _) -> ()
  | Ok _ -> Alcotest.fail "non-deferrable commit succeeded while down"
  | Error e -> Alcotest.failf "wrong error while down: %s" (verr e));
  let leaves = List.init 5 (fun i -> sha (Printf.sprintf "deferred-%d" i)) in
  List.iteri
    (fun i d ->
      match Anchor_svc.commit svc slot ~data:d ~defer_ok:true with
      | Ok (Anchor_svc.Deferred depth) -> check_i "queue depth grows" (i + 1) depth
      | Ok (Anchor_svc.Committed _) -> Alcotest.fail "committed while down"
      | Error e -> Alcotest.failf "defer: %s" (verr e))
    leaves;
  check_i "queue holds the backlog" 5 (Anchor_svc.queue_depth svc);
  (* Cooldown elapses on the simulated clock; one tick probes the chip,
     replays the journal and drains the backlog as one Merkle batch. *)
  Vtpm_util.Cost.charge mgr.Manager.cost
    (Anchor_svc.default_config.Anchor_svc.cooldown_us +. 1.0);
  Anchor_svc.tick svc;
  check_b "degraded after recovery" true (Anchor_svc.health svc = Anchor_svc.Degraded);
  check_i "queue drained" 0 (Anchor_svc.queue_depth svc);
  let st = Anchor_svc.stats svc in
  check_b "breaker open counted" true (st.Anchor_svc.st_breaker_opens >= 1);
  check_i "one catch-up batch" 1 st.Anchor_svc.st_catchup_batches;
  check_i "every deferred entry batched" 5 st.Anchor_svc.st_catchup_entries;
  (* The anchored root proves each deferred digest individually. *)
  (match Anchor_svc.read_slot svc slot ~length:Anchor.head_size with
  | Ok (root, _) ->
      List.iter
        (fun d ->
          match Anchor_svc.proof_for svc ~label:slot.Anchor_svc.sl_label ~data:d with
          | Some (r, p) ->
              check_s "proof root is the anchored root" root r;
              check_b "inclusion proof verifies" true (Merkle.verify ~root:r ~leaf:d p)
          | None -> Alcotest.fail "missing inclusion proof")
        leaves
  | Error e -> Alcotest.failf "read after drain: %s" (verr e));
  (* The unanchored window is audited open and closed. *)
  let reasons = List.map (fun e -> e.Audit.reason) (Audit.entries m.Monitor.audit) in
  check_b "window-open audited" true (List.exists (fun r -> contains r "window-open") reasons);
  check_b "window-close audited" true (List.exists (fun r -> contains r "window-close") reasons);
  (* Clean commits walk Degraded back to Healthy. *)
  let i = ref 0 in
  while Anchor_svc.health svc <> Anchor_svc.Healthy && !i < 8 do
    ignore (commit_ok ~what:"heal" svc slot (sha (Printf.sprintf "heal-%d" !i)));
    incr i
  done;
  check_b "healthy again after a clean streak" true
    (Anchor_svc.health svc = Anchor_svc.Healthy)

let test_bounded_queue_and_staleness () =
  let cfg =
    { Anchor_svc.default_config with Anchor_svc.max_deferred = 2; max_staleness_us = 10.0 }
  in
  let _host, _m, mgr, _ckpt, anchor, svc = rig ~cfg ~seed:23 () in
  let slot = Anchor.slot_of anchor in
  Anchor_svc.force_down svc;
  let defer what d =
    match Anchor_svc.commit svc slot ~data:d ~defer_ok:true with
    | Ok (Anchor_svc.Deferred _) -> ()
    | Ok (Anchor_svc.Committed _) -> Alcotest.failf "%s: committed while down" what
    | Error e -> Alcotest.failf "%s: %s" what (verr e)
  in
  let dropped = sha "oldest-dropped" in
  defer "first" dropped;
  defer "second" (sha "kept-1");
  defer "third" (sha "kept-2");
  check_i "queue stays bounded" 2 (Anchor_svc.queue_depth svc);
  check_i "oldest dropped" 1 (Anchor_svc.stats svc).Anchor_svc.st_queue_dropped;
  (* Age the backlog past the staleness bound; the next deferral records
     the contract breach. *)
  Vtpm_util.Cost.charge mgr.Manager.cost 50.0;
  defer "stale" (sha "kept-3");
  check_b "staleness breach recorded" true
    ((Anchor_svc.stats svc).Anchor_svc.st_staleness_breaches >= 1);
  (* Recovery anchors only what the queue still holds; the dropped digest
     has no inclusion proof. *)
  Vtpm_util.Cost.charge mgr.Manager.cost
    (Anchor_svc.default_config.Anchor_svc.cooldown_us +. 1.0);
  Anchor_svc.tick svc;
  check_i "backlog drained" 0 (Anchor_svc.queue_depth svc);
  (match Anchor_svc.proof_for svc ~label:slot.Anchor_svc.sl_label ~data:(sha "kept-3") with
  | Some (r, p) -> check_b "kept digest proven" true (Merkle.verify ~root:r ~leaf:(sha "kept-3") p)
  | None -> Alcotest.fail "kept digest missing from the batch");
  match Anchor_svc.proof_for svc ~label:slot.Anchor_svc.sl_label ~data:dropped with
  | None -> ()
  | Some _ -> Alcotest.fail "dropped digest has a proof"

(* --- Audit log verification through the service ------------------------------------ *)

let test_audit_verify_through_service () =
  let _host, m, mgr, _ckpt, anchor, svc = rig ~seed:17 () in
  for i = 1 to 4 do
    Audit.append m.Monitor.audit ~subject:"test" ~operation:"extend" ~instance:(Some 1)
      ~allowed:true ~reason:(Printf.sprintf "entry %d" i)
  done;
  (match Anchor.commit_via svc anchor m.Monitor.audit with
  | Ok (Anchor_svc.Committed _) -> ()
  | Ok (Anchor_svc.Deferred _) -> Alcotest.fail "healthy chip deferred"
  | Error e -> Alcotest.failf "commit_via: %s" (verr e));
  (match Anchor.verify_log anchor mgr ~svc m.Monitor.audit with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify_log: %s" (verr e));
  (* A truncated export keeps a valid chain but no longer ends at the
     anchored head — refused as an integrity failure. *)
  let entries = Audit.entries m.Monitor.audit in
  let truncated = List.filteri (fun i _ -> i < List.length entries - 1) entries in
  match Anchor.verify anchor mgr ~svc truncated with
  | Error (Vtpm_util.Verror.Integrity _) -> ()
  | Ok () -> Alcotest.fail "truncated log verified"
  | Error e -> Alcotest.failf "wrong error for truncation: %s" (verr e)

(* --- Freshness fails closed --------------------------------------------------------- *)

let test_freshness_fails_closed () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:13 ~rsa_bits:256 () in
  let m = Host.monitor_exn host in
  let mgr = host.Host.mgr in
  let fresh =
    match Monitor.enable_freshness m with
    | Ok f -> f
    | Error e -> Alcotest.failf "freshness: %s" e
  in
  let ckpt = Checkpoint.create ~fresh mgr in
  let svc = Anchor_svc.create ~ckpt mgr in
  (match Anchor_svc.attach_freshness svc fresh with
  | Ok () -> ()
  | Error e -> Alcotest.failf "attach: %s" (verr e));
  (* Routed commits work while the chip is up... *)
  (match Freshness.anchor_commit fresh with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "routed commit: %s" (verr e));
  let lin = "lineage-test" in
  let c = Freshness.issue fresh ~lineage:lin in
  (match Freshness.admit fresh ~lineage:lin ~counter:c with
  | Ok () -> ()
  | Error e -> Alcotest.failf "healthy admit: %s" e);
  (* ...and fail closed while it is down: no deferral for freshness. *)
  Anchor_svc.force_down svc;
  (match Freshness.anchor_commit fresh with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "freshness committed while the chip was down");
  let c2 = Freshness.issue fresh ~lineage:lin in
  (match Freshness.admit fresh ~lineage:lin ~counter:c2 with
  | Error e -> check_b "refusal names the outage" true (contains e "unavailable")
  | Ok () -> Alcotest.fail "admission while the anchor was down");
  (* Recovery restores synchronous anchoring. *)
  Vtpm_util.Cost.charge mgr.Manager.cost
    (Anchor_svc.default_config.Anchor_svc.cooldown_us +. 1.0);
  Anchor_svc.tick svc;
  check_b "recovered" true (Anchor_svc.available svc);
  match Freshness.admit fresh ~lineage:lin ~counter:c2 with
  | Ok () -> ()
  | Error e -> Alcotest.failf "post-recovery admit: %s" e

(* --- The drill and storm the bench runs, at test scale ------------------------------ *)

let test_experiment_drill_and_storm () =
  List.iter
    (fun b ->
      let r = Vtpm_sim.Experiments.torn_commit_drill ~crashes:1 ~seed:29 b in
      check_i "no torn anchors" 0 r.Vtpm_sim.Experiments.t8_torn;
      check_b "log verifies after repair" true r.Vtpm_sim.Experiments.t8_verify_ok)
    Vtpm_sim.Experiments.crash_boundaries;
  let s = Vtpm_sim.Experiments.anchor_storm ~flood_x:4 ~commits:10 ~seed:31 () in
  check_i "storm leaves nothing torn" 0 s.Vtpm_sim.Experiments.as_torn;
  check_b "storm verified after catch-up" true s.Vtpm_sim.Experiments.as_verify_ok;
  check_i "no hard errors leaked" 0 s.Vtpm_sim.Experiments.as_hard_errors

let suite =
  [
    Alcotest.test_case "merkle root and combine count" `Quick test_merkle_root_and_combines;
    Alcotest.test_case "merkle proofs at every size" `Quick test_merkle_proofs_every_size;
    Alcotest.test_case "commit, read back, counter advances" `Quick test_commit_sync_and_read;
    Alcotest.test_case "torn commit repaired at every boundary" `Quick test_torn_commit_repair;
    Alcotest.test_case "recovery is idempotent" `Quick test_recover_is_idempotent;
    Alcotest.test_case "transient chip faults ride the retry loop" `Quick
      test_transient_faults_ride_retry;
    Alcotest.test_case "breaker defers, Merkle catch-up proves every entry" `Quick
      test_breaker_defers_and_catches_up;
    Alcotest.test_case "deferred queue bounded, staleness breaches audited" `Quick
      test_bounded_queue_and_staleness;
    Alcotest.test_case "audit verify accepts batched catch-up, refuses truncation" `Quick
      test_audit_verify_through_service;
    Alcotest.test_case "freshness fails closed while the chip is down" `Quick
      test_freshness_fails_closed;
    Alcotest.test_case "boundary drill and fault storm at test scale" `Slow
      test_experiment_drill_and_storm;
  ]
