(* Test entry point: one Alcotest suite per library. *)

let () =
  Alcotest.run "vtpm-xen-repro"
    [
      ("util", Test_util.suite);
      ("crypto", Test_crypto.suite);
      ("tpm", Test_tpm.suite);
      ("xen", Test_xen.suite);
      ("faults", Test_faults.suite);
      ("vtpm", Test_vtpm.suite);
      ("migration", Test_migration.suite);
      ("access", Test_access.suite);
      ("anchor", Test_anchor.suite);
      ("attacks", Test_attacks.suite);
      ("fuzz", Test_fuzz.suite);
      ("overload", Test_overload.suite);
      ("sim", Test_sim.suite);
      ("perf", Test_perf.suite);
      ("shard", Test_shard.suite);
      ("integration", Test_integration.suite);
    ]
