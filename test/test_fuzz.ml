(* The adversarial interleaving fuzzer: QCheck property with shrinking,
   deterministic replay artifacts, the checked-in seed trace, and the
   revoke-during-batch-drain regression. *)

open Vtpm_attacks

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let fail_violations label (r : Fuzz.report) =
  if not (Fuzz.ok r) then
    Alcotest.failf "%s: %s" label (String.concat "; " r.Fuzz.violations)

(* Same candidate list as the policy fixtures: the cwd differs between
   `dune runtest` and `dune exec`. *)
let fixture_path name =
  let candidates =
    [
      Filename.concat (Filename.dirname Sys.executable_name) ("../policies/" ^ name);
      "../policies/" ^ name;
      "policies/" ^ name;
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> Alcotest.failf "fixture %s not found" name

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --- The property ----------------------------------------------------------------- *)

let prop_interleavings =
  QCheck.Test.make ~count:25
    ~name:"random adversarial interleavings preserve the invariant bundle" Fuzz.arb_trace
    (fun t ->
      let r = Fuzz.run_trace ~seed:11 t in
      if Fuzz.ok r then true
      else begin
        (* Shrunk reproducer becomes a replay artifact for the report. *)
        (try Fuzz.save_trace "fuzz-failure.trace" t with Sys_error _ -> ());
        QCheck.Test.fail_reportf "invariant violations:@.%s@.trace (saved to fuzz-failure.trace):@.%s"
          (String.concat "\n" r.Fuzz.violations)
          (Fuzz.trace_to_string t)
      end)

(* --- Determinism + serialization --------------------------------------------------- *)

let test_deterministic () =
  let t = Fuzz.gen_trace ~seed:3 ~index:5 () in
  let r1 = Fuzz.run_trace ~seed:21 t in
  let r2 = Fuzz.run_trace ~seed:21 t in
  fail_violations "first run" r1;
  check_b "identical reports on identical (seed, trace)" true (r1 = r2)

let test_roundtrip () =
  let t = Fuzz.gen_trace ~seed:9 ~index:2 () in
  (match Fuzz.trace_of_string (Fuzz.trace_to_string t) with
  | Ok t' -> check_b "parse . print = id" true (t = t')
  | Error e -> Alcotest.failf "roundtrip: %s" e);
  (match Fuzz.trace_of_string "bogus header\n1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad header accepted");
  match Fuzz.trace_of_string (Fuzz.trace_header ^ "\n1 two\n") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad line accepted"

let test_save_load () =
  let t = Fuzz.gen_trace ~seed:4 ~index:7 () in
  let path = Filename.temp_file "fuzz" ".trace" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Fuzz.save_trace path t;
      match Fuzz.load_trace path with
      | Ok t' -> check_b "save/load roundtrip" true (t = t')
      | Error e -> Alcotest.failf "load: %s" e)

(* The checked-in seed: replays clean, and re-serializes byte-for-byte —
   the artifact format is stable. *)
let test_seed_fixture () =
  let path = fixture_path "fuzz-seed-001.trace" in
  let contents = read_file path in
  (match Fuzz.trace_of_string contents with
  | Error e -> Alcotest.failf "fixture parse: %s" e
  | Ok t ->
      check_b "fixture re-serializes byte-for-byte" true
        (String.equal (Fuzz.trace_to_string t) contents);
      (* The fixture exercises every op tag, including a migration. *)
      let tags = List.sort_uniq compare (List.map (fun (tag, _) -> tag mod Fuzz.op_tags) t) in
      check_i "all op tags covered" Fuzz.op_tags (List.length tags));
  match Fuzz.replay ~seed:11 path with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok r ->
      fail_violations "seed trace" r;
      check_b "seed trace contains attacks" true (r.Fuzz.attack_ops > 0);
      check_b "seed trace detected tampering" true (r.Fuzz.tampers > 0);
      check_i "seed trace migrated" 1 r.Fuzz.migrations

(* The anchor fixture: a schedule arming every hardware-TPM fault class
   against legitimate anchor commits — the fault-domain regression
   corpus. Replays clean and stays byte-stable. *)
let test_anchor_fixture () =
  let path = fixture_path "fuzz-anchor-001.trace" in
  let contents = read_file path in
  (match Fuzz.trace_of_string contents with
  | Error e -> Alcotest.failf "fixture parse: %s" e
  | Ok t ->
      check_b "fixture re-serializes byte-for-byte" true
        (String.equal (Fuzz.trace_to_string t) contents);
      check_b "every hardware fault class armed" true
        (List.sort_uniq compare
           (List.filter_map
              (fun (tag, arg) ->
                if tag mod Fuzz.op_tags = 12 then Some (arg mod 5) else None)
              t)
        = [ 0; 1; 2; 3; 4 ]));
  match Fuzz.replay ~seed:11 path with
  | Error e -> Alcotest.failf "replay: %s" e
  | Ok r ->
      fail_violations "anchor trace" r;
      check_b "hw faults were armed" true (r.Fuzz.attack_ops > 0)

(* --- Bounded smoke soak (the @fuzz alias runs this suite) --------------------------- *)

let test_smoke_soak () =
  let s = Fuzz.soak ~seed:5 ~traces:25 () in
  (match s.Fuzz.sk_failures with
  | [] -> ()
  | (i, vs) :: _ ->
      Alcotest.failf "trace %d violated the bundle: %s" i (String.concat "; " vs));
  check_b "soak exercised attacks" true (s.Fuzz.sk_attacks > 0);
  check_b "soak detected tampers" true (s.Fuzz.sk_tampers > 0);
  check_b "soak ran migrations" true (s.Fuzz.sk_migrations > 0);
  check_b "soak rotated the audit log" true (s.Fuzz.sk_rotations > 0);
  check_b "soak observed zero bypasses" true (s.Fuzz.sk_bypasses = 0)

(* --- Revoke during batch drain (gnttab edge-case regression) ------------------------ *)

(* A gref force-revoked while requests sit in the drain window must fail
   the in-flight op with an audited denial — never silent success — and
   the link must heal for the requests behind it. *)
let test_revoke_during_batch_drain () =
  let open Vtpm_xen in
  let open Vtpm_mgr in
  let host = Vtpm_access.Host.create ~mode:Vtpm_access.Host.Improved_mode ~seed:33 ~rsa_bits:256 () in
  let m = Vtpm_access.Host.monitor_exn host in
  let backend = host.Vtpm_access.Host.backend in
  backend.Driver.resilience <- Some Driver.default_resilience;
  Driver.set_overload backend (Some { Driver.queue_capacity = 8; deadline_us = 1.0e12 });
  Driver.set_batch backend 4;
  let g = Vtpm_access.Host.create_guest_exn host ~name:"drainee" ~label:"tenant_d" () in
  let wire = Vtpm_tpm.Wire.encode_request (Vtpm_tpm.Cmd.Pcr_read { pcr = 10 }) in
  for _ = 1 to 3 do
    match Driver.submit backend g.Vtpm_access.Host.conn ~wire () with
    | Ok () -> ()
    | Error e -> Alcotest.failf "submit: %s" (Vtpm_util.Verror.to_string e)
  done;
  (match
     Hypervisor.force_revoke_grant host.Vtpm_access.Host.xen ~caller:Hypervisor.dom0_id
       ~owner:g.Vtpm_access.Host.domid ~gref:g.Vtpm_access.Host.conn.Driver.gref
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "force_revoke_grant: %s" e);
  let outcomes = ref [] in
  let rec drain () =
    match Driver.pump_batch backend with
    | `Idle -> ()
    | `Served l ->
        outcomes := !outcomes @ List.map (fun s -> s.Driver.s_outcome) l;
        drain ()
  in
  drain ();
  check_i "all three in-flight requests accounted" 3 (List.length !outcomes);
  (* The op in flight when the revoke landed fails with a transport
     denial... *)
  (match !outcomes with
  | Error e :: _ ->
      check_b "denial names transport integrity" true
        (let s = Vtpm_util.Verror.to_string e in
         let needle = "transport" in
         let n = String.length needle and l = String.length s in
         let rec at i = i + n <= l && (String.equal (String.sub s i n) needle || at (i + 1)) in
         at 0)
  | Ok _ :: _ -> Alcotest.fail "revoked-window op silently succeeded"
  | [] -> Alcotest.fail "nothing served");
  (* ...the requests behind it heal through a reconnect... *)
  let healed =
    List.for_all (function Ok _ -> true | Error _ -> false) (List.tl !outcomes)
  in
  check_b "remaining requests served after reconnect" true healed;
  check_b "link re-handshaken" true (g.Vtpm_access.Host.conn.Driver.reconnects > 0);
  (* ...and the tamper is audited as a denial against the frontend. *)
  check_b "tamper audited" true
    (List.exists
       (fun (e : Vtpm_access.Audit.entry) ->
         (not e.Vtpm_access.Audit.allowed)
         && String.equal e.Vtpm_access.Audit.operation "transport-tamper")
       (Vtpm_access.Audit.entries m.Vtpm_access.Monitor.audit))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_interleavings;
    Alcotest.test_case "identical (seed, trace) gives identical reports" `Quick test_deterministic;
    Alcotest.test_case "trace serialization roundtrips and rejects junk" `Quick test_roundtrip;
    Alcotest.test_case "traces save and load" `Quick test_save_load;
    Alcotest.test_case "checked-in seed trace replays clean, byte-for-byte" `Quick
      test_seed_fixture;
    Alcotest.test_case "anchor fixture arms every hw fault class, replays clean" `Quick
      test_anchor_fixture;
    Alcotest.test_case "bounded soak: zero violations, attacks exercised" `Slow test_smoke_soak;
    Alcotest.test_case "revoke during batch drain: audited denial, no silent success" `Quick
      test_revoke_during_batch_drain;
  ]
