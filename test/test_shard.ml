(* Tests for lane placement policies and manager sharding (PR 9): the
   fixed-hash bit-identity property, per-instance FIFO under work
   stealing, the least-loaded horizon bound on seeded workloads, the
   set_lanes horizon-carry and lane_stats self-sync regressions, the
   naive-pick rotor starvation fix, group registry/routing, the
   per-group quota, the group audit tag, and a small-scale isolation
   drill. *)

open Vtpm_access
open Vtpm_mgr
module Lanes = Vtpm_util.Cost.Lanes
module Experiments = Vtpm_sim.Experiments

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_f = Alcotest.(check (float 0.0))

(* --- Placement policies (Cost.Lanes) ------------------------------------------ *)

(* Reference model of the seed's fixed-hash lane arithmetic: same floats
   in the same order, kept deliberately separate from the implementation. *)
let reference_fixed_hash ~lanes jobs =
  let busy = Array.make lanes 0.0 in
  let meter = Vtpm_util.Cost.create () in
  List.iter
    (fun (key, us) ->
      let i = ((key mod lanes) + lanes) mod lanes in
      let start = Float.max (Vtpm_util.Cost.now meter) busy.(i) in
      busy.(i) <- start +. us;
      let earliest = Array.fold_left Float.min busy.(0) busy in
      Vtpm_util.Cost.advance_to meter earliest)
    jobs;
  (Vtpm_util.Cost.now meter, busy)

let job_gen =
  QCheck.Gen.(
    pair (int_range 1 6)
      (list_size (int_bound 60) (pair (int_range (-5) 40) (float_bound_inclusive 5_000.0))))

(* Satellite 4a: the default placement is bit-identical to the seed's
   charge model — exact float equality, no tolerance. *)
let prop_fixed_hash_bit_identical =
  QCheck.Test.make ~name:"Fixed_hash bit-identical to seed lane arithmetic" ~count:200
    (QCheck.make job_gen) (fun (lanes, jobs) ->
      let ref_now, ref_busy = reference_fixed_hash ~lanes jobs in
      let meter = Vtpm_util.Cost.create () in
      let pool = Lanes.create lanes in
      List.iter (fun (key, us) -> ignore (Lanes.exec pool meter ~key us)) jobs;
      Vtpm_util.Cost.now meter = ref_now && Lanes.horizons pool = ref_busy)

(* Satellite 4b: work stealing migrates instances only between commands,
   so each key's completions stay strictly ordered (FIFO per instance). *)
let prop_ws_preserves_per_instance_order =
  QCheck.Test.make ~name:"Work_stealing preserves per-instance FIFO" ~count:200
    (QCheck.make
       QCheck.Gen.(
         pair (int_range 1 4)
           (list_size (int_bound 80)
              (pair (int_range 0 5) (float_range 1.0 2_000.0)))))
    (fun (lanes, jobs) ->
      let meter = Vtpm_util.Cost.create () in
      let pool = Lanes.create ~placement:Lanes.Work_stealing lanes in
      let last = Hashtbl.create 8 in
      List.for_all
        (fun (key, us) ->
          let finish = Lanes.exec pool meter ~key us in
          let prev = Option.value ~default:0.0 (Hashtbl.find_opt last key) in
          Hashtbl.replace last key finish;
          finish > prev)
        jobs)

(* Satellite 4c: least-loaded never ends with a worse makespan than the
   fixed hash on skewed workloads. This is NOT a theorem (greedy
   placement can lose on adversarial sequences), so it is pinned to
   deterministic seeds rather than random QCheck input. *)
let test_ll_horizon_bounded_by_fh () =
  List.iter
    (fun seed ->
      let rng = Vtpm_util.Rng.create ~seed in
      let jobs =
        List.init 120 (fun _ ->
            (* Skewed keys: low ids dominate, so the fixed hash piles
               them onto few lanes while others idle. *)
            let key = Vtpm_util.Rng.int rng 12 * Vtpm_util.Rng.int rng 2 in
            let us = 50.0 +. float_of_int (Vtpm_util.Rng.int rng 3_000) in
            (key, us))
      in
      let run placement =
        let meter = Vtpm_util.Cost.create () in
        let pool = Lanes.create ~placement 4 in
        List.iter (fun (key, us) -> ignore (Lanes.exec pool meter ~key us)) jobs;
        Lanes.max_horizon pool
      in
      let fh = run Lanes.Fixed_hash and ll = run Lanes.Least_loaded in
      check_b (Printf.sprintf "seed %d: LL makespan %.0f <= FH %.0f" seed ll fh) true
        (ll <= fh))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]

let test_ws_steals_under_skew () =
  let meter = Vtpm_util.Cost.create () in
  let pool = Lanes.create ~placement:Lanes.Work_stealing 2 in
  (* key 1 -> lane 0, key 2 -> lane 1, key 3 lands on lane 1 (idlest) and
     buries it; key 2's next command then finds lane 0 strictly earlier
     than its home and migrates. *)
  ignore (Lanes.exec pool meter ~key:1 100.0);
  ignore (Lanes.exec pool meter ~key:2 10.0);
  ignore (Lanes.exec pool meter ~key:3 1_000.0);
  check_i "no steal yet" 0 (Lanes.steals pool);
  let finish = Lanes.exec pool meter ~key:2 10.0 in
  check_i "one steal" 1 (Lanes.steals pool);
  check_f "stolen command starts on the idler lane" 110.0 finish

let test_fixed_hash_never_migrates () =
  let meter = Vtpm_util.Cost.create () in
  let pool = Lanes.create 3 in
  List.iter
    (fun key ->
      ignore (Lanes.exec pool meter ~key 500.0);
      check_i
        (Printf.sprintf "key %d pinned" key)
        (((key mod 3) + 3) mod 3)
        (Lanes.lane_for pool ~key))
    [ 0; 1; 2; 3; 4; 5; 17; -4 ];
  check_i "fixed hash never steals" 0 (Lanes.steals pool)

(* --- Manager regressions ------------------------------------------------------- *)

(* Satellite 1: resizing the pool mid-run must not discard in-flight lane
   horizons — elapsed time already accrued would silently vanish. *)
let test_set_lanes_carries_horizons () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:11 ~rsa_bits:256 () in
  let cost = Host.cost host in
  Manager.set_lanes host.Host.mgr 4;
  (* Unknown vtpm_id falls back to the manager-wide pool. *)
  Manager.charge_lane host.Host.mgr ~vtpm_id:999 5_000.0;
  let before = Vtpm_util.Cost.now cost in
  Manager.set_lanes host.Host.mgr 8;
  let after = Vtpm_util.Cost.now cost in
  check_b
    (Printf.sprintf "horizon drained into meter on resize (%.0f -> %.0f)" before after)
    true
    (after >= before +. 5_000.0)

(* Satellite 2: lane_stats must reflect work still sitting in lane
   horizons without the caller having to sync first. *)
let test_lane_stats_self_syncing () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:12 ~rsa_bits:256 () in
  Manager.set_lanes host.Host.mgr 2;
  Manager.charge_lane host.Host.mgr ~vtpm_id:1 700.0;
  Manager.charge_lane host.Host.mgr ~vtpm_id:2 300.0;
  let stats = Manager.lane_stats host.Host.mgr in
  let busy = Array.fold_left (fun acc (_, us) -> acc +. us) 0.0 stats in
  check_f "busy time visible without explicit sync" 1_000.0 busy;
  let execd = Array.fold_left (fun acc (n, _) -> acc + n) 0 stats in
  check_i "both commands counted" 2 execd

(* Satellite 3: exact arrival-time ties in the naive FIFO pick must not
   starve higher-domid frontends behind a same-stamp flood. *)
let test_fifo_rotor_shares_ties () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:13 ~rsa_bits:256 () in
  let g1 = Host.create_guest_exn host ~name:"g1" ~label:"tenant_00" () in
  let g2 = Host.create_guest_exn host ~name:"g2" ~label:"tenant_01" () in
  let backend = host.Host.backend in
  let wire = Vtpm_tpm.Wire.encode_request (Vtpm_tpm.Cmd.Pcr_read { pcr = 0 }) in
  let at = Vtpm_util.Cost.now (Host.cost host) in
  (* Same arrival stamp for every request: pre-rotor code served g1's
     whole backlog before g2's first request. *)
  for _ = 1 to 3 do
    (match Driver.submit backend g1.Host.conn ~wire ~arrival_us:at () with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Vtpm_util.Verror.to_string e));
    match Driver.submit backend g2.Host.conn ~wire ~arrival_us:at () with
    | Ok () -> ()
    | Error e -> Alcotest.fail (Vtpm_util.Verror.to_string e)
  done;
  let order = ref [] in
  let rec pump () =
    match Driver.pump_batch backend with
    | `Idle -> ()
    | `Served served ->
        List.iter (fun (s : Driver.serviced) -> order := s.Driver.s_domid :: !order) served;
        pump ()
  in
  pump ();
  let order = List.rev !order in
  check_i "all six served" 6 (List.length order);
  check_b
    (Printf.sprintf "tied frontends alternate, got [%s]"
       (String.concat "; " (List.map string_of_int order)))
    true
    (order = [ g1.Host.domid; g2.Host.domid; g1.Host.domid; g2.Host.domid;
               g1.Host.domid; g2.Host.domid ])

(* --- Groups and sharding -------------------------------------------------------- *)

let test_group_registry_basics () =
  let g = Group.create ~lanes_per_shard:2 () in
  let a = Group.intern g ~label:"acme" in
  let b = Group.intern g ~label:"globex" in
  let a' = Group.intern g ~label:"acme" in
  check_i "dense ids from 1" 1 a.Group.group_id;
  check_i "second tenant id 2" 2 b.Group.group_id;
  check_i "intern is idempotent" a.Group.group_id a'.Group.group_id;
  check_i "two shards" 2 (Group.count g);
  check_b "find_label" true (Group.find_label g "globex" = Some b);
  check_b "audit tag" true (String.equal (Group.audit_tag a) "group:acme");
  check_b "lanes_per_shard < 1 rejected" true
    (try
       ignore (Group.create ~lanes_per_shard:0 ());
       false
     with Invalid_argument _ -> true)

let test_sharded_routing_and_members () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:17 ~rsa_bits:256 () in
  let g1 = Host.create_guest_exn host ~name:"a0" ~label:"acme" () in
  let g2 = Host.create_guest_exn host ~name:"b0" ~label:"globex" () in
  check_b "unsharded until enabled" false (Host.sharded host);
  let registry = Host.enable_sharding host () in
  check_b "sharded now" true (Host.sharded host);
  check_i "one shard per label" 2 (Group.count registry);
  (* New guests are auto-assigned by the installed group_of. *)
  let g3 = Host.create_guest_exn host ~name:"a1" ~label:"acme" () in
  let acme =
    match Group.find_label registry "acme" with
    | Some s -> s
    | None -> Alcotest.fail "acme shard missing"
  in
  check_i "acme has both members" 2 acme.Group.members;
  (* The O(1) domid index now routes to (shard, vtpm). *)
  List.iter
    (fun ((g : Host.guest), label) ->
      match Manager.route_for_domid host.Host.mgr g.Host.domid with
      | Some (gid, inst) ->
          check_i (g.Host.name ^ " routed to its instance") g.Host.vtpm_id
            inst.Manager.vtpm_id;
          let s =
            match Group.find registry gid with
            | Some s -> s
            | None -> Alcotest.fail "routed to unknown group"
          in
          check_b (g.Host.name ^ " in its label's shard") true
            (String.equal s.Group.label label)
      | None -> Alcotest.fail (g.Host.name ^ " not routed"))
    [ (g1, "acme"); (g2, "globex"); (g3, "acme") ];
  (* Grouped instances execute on their shard's pool, not the global one. *)
  Manager.charge_lane host.Host.mgr ~vtpm_id:g1.Host.vtpm_id 1_234.0;
  let shard_busy =
    List.fold_left
      (fun acc (_, _, _, lanes) ->
        acc +. Array.fold_left (fun a (_, us) -> a +. us) 0.0 lanes)
      0.0
      (Manager.shard_stats host.Host.mgr)
  in
  check_f "charge landed on a shard pool" 1_234.0 shard_busy;
  (* Destroying a guest releases its shard membership. *)
  (match Host.destroy_guest host g3 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  check_i "member released on destroy" 1 acme.Group.members

let test_group_audit_tag_on_requests () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:19 ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"a0" ~label:"acme" () in
  ignore (Host.enable_sharding host ());
  let client = Host.guest_client host g in
  (match Vtpm_tpm.Client.pcr_read client ~pcr:0 with
  | Ok _ -> ()
  | Error e -> Alcotest.fail (Format.asprintf "%a" Vtpm_tpm.Client.pp_error e));
  let m = Host.monitor_exn host in
  let tagged =
    List.exists
      (fun (e : Audit.entry) ->
        e.Audit.allowed
        && e.Audit.operation = "TPM_PCRRead"
        && String.length e.Audit.reason >= 10
        &&
        let n = String.length e.Audit.reason in
        String.equal (String.sub e.Audit.reason (n - 11) 11) ";group:acme")
      (Audit.entries m.Monitor.audit)
  in
  check_b "allowed request audited with its group tag" true tagged

let test_group_quota_scoped_to_group () =
  let r =
    Experiments.shard_drill ~sharded:true ~flood_x:5 ~victim_ops:40
      ~group_quota_rate:400.0 ~seed:7 ()
  in
  check_b "victims (other group) unthrottled" true (r.Experiments.t9_victim_goodput_pct >= 100.0);
  check_b "flooder throttled by its own group's bucket" true
    (r.Experiments.t9_attacker_rejected > 0)

(* --- Isolation drill (small scale) ---------------------------------------------- *)

let test_shard_drill_small () =
  let naive = Experiments.shard_drill ~sharded:false ~flood_x:5 ~victim_ops:40 ~seed:7 () in
  let sharded = Experiments.shard_drill ~sharded:true ~flood_x:5 ~victim_ops:40 ~seed:7 () in
  check_b
    (Printf.sprintf "single manager degrades under flood (%.1f%%)"
       naive.Experiments.t9_victim_goodput_pct)
    true
    (naive.Experiments.t9_victim_goodput_pct < 100.0);
  check_f "sharded victim group at 100%" 100.0 sharded.Experiments.t9_victim_goodput_pct

(* --- fig13 at reduced scale ------------------------------------------------------ *)

let test_fig13_shape_small () =
  let series, _ =
    Experiments.fig13 ~vm_counts:[ 8; 16 ] ~rules:64 ~total_ops:240 ()
  in
  let at name x =
    match List.assoc_opt name series with
    | Some points -> ( match List.assoc_opt x points with Some y -> y | None -> 0.0)
    | None -> 0.0
  in
  check_b "all four series present" true (List.length series = 4);
  check_b "dynamic placement beats fixed hash at 16 VMs" true
    (at "least-loaded" 16.0 > at "fixed-hash 8-lane" 16.0);
  check_b "sharded scales past fixed hash at 16 VMs" true
    (at "sharded" 16.0 > at "fixed-hash 8-lane" 16.0)

let suite =
  [
    Alcotest.test_case "single-lane identity (placement)" `Quick (fun () ->
        (* A 1-lane pool must stay serial under every policy. *)
        List.iter
          (fun placement ->
            let meter = Vtpm_util.Cost.create () in
            let pool = Lanes.create ~placement 1 in
            ignore (Lanes.exec pool meter ~key:1 100.0);
            ignore (Lanes.exec pool meter ~key:2 50.0);
            Lanes.sync pool meter;
            check_f (Lanes.placement_name placement ^ " serial") 150.0
              (Vtpm_util.Cost.now meter))
          [ Lanes.Fixed_hash; Lanes.Least_loaded; Lanes.Work_stealing ]);
    QCheck_alcotest.to_alcotest prop_fixed_hash_bit_identical;
    QCheck_alcotest.to_alcotest prop_ws_preserves_per_instance_order;
    Alcotest.test_case "least-loaded horizon <= fixed-hash (seeded)" `Quick
      test_ll_horizon_bounded_by_fh;
    Alcotest.test_case "work stealing migrates between charges" `Quick
      test_ws_steals_under_skew;
    Alcotest.test_case "fixed hash never migrates" `Quick test_fixed_hash_never_migrates;
    Alcotest.test_case "set_lanes carries in-flight horizons" `Quick
      test_set_lanes_carries_horizons;
    Alcotest.test_case "lane_stats self-syncs" `Quick test_lane_stats_self_syncing;
    Alcotest.test_case "naive pick rotates exact-arrival ties" `Quick
      test_fifo_rotor_shares_ties;
    Alcotest.test_case "group registry basics" `Quick test_group_registry_basics;
    Alcotest.test_case "sharded routing, members, shard pools" `Quick
      test_sharded_routing_and_members;
    Alcotest.test_case "group audit tag on allowed requests" `Quick
      test_group_audit_tag_on_requests;
    Alcotest.test_case "group quota scoped to the noisy group" `Quick
      test_group_quota_scoped_to_group;
    Alcotest.test_case "cross-group flood drill (small)" `Quick test_shard_drill_small;
    Alcotest.test_case "fig13 shape (small)" `Quick test_fig13_shape_small;
  ]
