(* The abstract's motivating scenario: a multi-tenant host (the "Amazon"
   example) where co-resident VMs and host-side dump tools threaten tenant
   secrets. Runs the same cast of characters against the baseline manager
   and against the improved monitor, narrating what each attacker gets.

   Run with:  dune exec examples/cloud_tenants.exe *)

open Vtpm_access

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %a" what Vtpm_tpm.Client.pp_error e)

let section fmt = Fmt.pr ("@.== " ^^ fmt ^^ " ==@.")

(* One tenant's deployment: measured boot + a sealed database key. *)
let provision host name =
  let guest = Host.create_guest_exn host ~name ~label:("tenant_" ^ name) () in
  let tpm = Host.guest_client host guest in
  let _ = ok "measure" (Vtpm_tpm.Client.measure tpm ~pcr:10 ~event:(name ^ "-kernel")) in
  let srk_auth = Vtpm_crypto.Sha1.digest (name ^ "-srk") in
  let _ = ok "own" (Vtpm_tpm.Client.take_ownership tpm ~owner_auth:(name ^ "-owner") ~srk_auth) in
  let sess = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:srk_auth) in
  let sealed =
    ok "seal"
      (Vtpm_tpm.Client.seal ~continue:false tpm sess ~key:Vtpm_tpm.Types.kh_srk
         ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [ 10 ])
         ~blob_auth:(Vtpm_crypto.Sha1.digest (name ^ "-blob"))
         ~data:(name ^ "-database-master-key"))
  in
  (guest, sealed)

let run_scenario mode =
  section "host in %s mode" (Host.mode_name mode);
  let host = Host.create ~mode ~seed:77 ~rsa_bits:256 () in
  let alice, _sealed = provision host "alice" in
  let mallory, _ = provision host "mallory" in
  Fmt.pr "tenants: alice (vtpm %d), mallory (vtpm %d)@." alice.Host.vtpm_id mallory.Host.vtpm_id;

  (* Attack 1: Mallory forges Alice's instance number on her own ring. *)
  let alice_pcr10 =
    let inst = Result.get_ok (Vtpm_mgr.Manager.find host.Host.mgr alice.Host.vtpm_id) in
    Result.get_ok (Vtpm_tpm.Engine.pcr_value inst.Vtpm_mgr.Manager.engine 10)
  in
  let wire = Vtpm_tpm.Wire.encode_request (Vtpm_tpm.Cmd.Pcr_read { pcr = 10 }) in
  let frame = Vtpm_mgr.Proto.encode_request ~claimed_instance:alice.Host.vtpm_id wire in
  ignore (Vtpm_xen.Ring.push_request mallory.Host.conn.Vtpm_mgr.Driver.ring frame);
  ignore (Vtpm_mgr.Driver.process_pending host.Host.backend);
  (match Vtpm_xen.Ring.pop_response mallory.Host.conn.Vtpm_mgr.Driver.ring with
  | Some slot -> (
      match Vtpm_mgr.Proto.decode_response slot.Vtpm_xen.Ring.payload with
      | Ok (Vtpm_mgr.Proto.Ok_routed, payload) -> (
          let resp = Vtpm_tpm.Wire.decode_response payload in
          match resp.Vtpm_tpm.Cmd.body with
          | Vtpm_tpm.Cmd.R_pcr_value v when String.equal v alice_pcr10 ->
              Fmt.pr "  forged-instance: mallory READ alice's PCR10 = %s@."
                (Vtpm_util.Hex.fingerprint v)
          | Vtpm_tpm.Cmd.R_pcr_value _ ->
              Fmt.pr "  forged-instance: routed to mallory's own vTPM — nothing leaked@."
          | _ -> Fmt.pr "  forged-instance: unexpected response@.")
      | Ok (Vtpm_mgr.Proto.Denied, r) -> Fmt.pr "  forged-instance: denied (%s)@." r
      | _ -> Fmt.pr "  forged-instance: bad frame@.")
  | None -> Fmt.pr "  forged-instance: no response@.");

  (* Attack 2: a rogue dom0 backup tool asks the manager for Alice's
     vTPM state. *)
  (match
     Host.management host ~process:"backup-tool" ~token:"stolen?"
       (Monitor.Save_instance { vtpm_id = alice.Host.vtpm_id })
   with
  | Ok (Monitor.M_blob blob) -> (
      match Vtpm_mgr.Stateproc.detect_format blob with
      | Some Vtpm_mgr.Stateproc.Plain ->
          Fmt.pr "  rogue-management: got PLAINTEXT state (%d bytes) — total compromise@."
            (String.length blob)
      | _ -> Fmt.pr "  rogue-management: got only a sealed blob@.")
  | Ok _ -> ()
  | Error e -> Fmt.pr "  rogue-management: rejected (%s)@." e);

  (* Attack 3: memory dump of Alice's RAM, hunting for the database key.
     Deployment discipline differs by era: the baseline-era app kept the
     key resident; the improved deployment keeps only the sealed blob. *)
  let dom = Vtpm_xen.Hypervisor.domain_exn host.Host.xen alice.Host.domid in
  let resident =
    match mode with
    | Host.Baseline_mode -> "alice-database-master-key"
    | Host.Improved_mode -> "(sealed blob only)"
  in
  ignore (Vtpm_xen.Domain.write_memory dom ~frame:3 ~offset:64 resident);
  (match
     Vtpm_xen.Hypervisor.scan_foreign_memory host.Host.xen ~caller:Vtpm_xen.Hypervisor.dom0_id
       ~target:alice.Host.domid ~pattern:"alice-database-master-key"
   with
  | Ok (_ :: _ as hits) ->
      Fmt.pr "  memory-dump: key found at %d location(s) in guest RAM@." (List.length hits)
  | Ok [] -> Fmt.pr "  memory-dump: key not resident; dump recovers nothing usable@."
  | Error e -> Fmt.pr "  memory-dump: %s@." e);

  (* The improved host also has a verifiable audit trail of all of this. *)
  match host.Host.monitor with
  | Some m ->
      let denials =
        List.length (List.filter (fun (e : Audit.entry) -> not e.Audit.allowed) (Audit.entries m.Monitor.audit))
      in
      Fmt.pr "  audit: %d decisions recorded, %d denials, chain %s@."
        (Audit.length m.Monitor.audit) denials
        (match
           Audit.verify_chain ~expected_head:(Audit.head m.Monitor.audit) (Audit.entries m.Monitor.audit)
         with
        | Ok () -> "intact"
        | Error _ -> "BROKEN")
  | None -> Fmt.pr "  audit: baseline manager keeps no audit log@."

let () =
  Fmt.pr "Multi-tenant host scenario (the abstract's motivating example)@.";
  run_scenario Host.Baseline_mode;
  run_scenario Host.Improved_mode;
  Fmt.pr "@.Conclusion: the improved monitor closes the co-resident and dom0-tool@.";
  Fmt.pr "attack paths that the 2006-style manager leaves open.@."
