examples/remote_attestation.mli:
