examples/cloud_tenants.ml: Audit Fmt Host List Monitor Result String Vtpm_access Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util Vtpm_xen
