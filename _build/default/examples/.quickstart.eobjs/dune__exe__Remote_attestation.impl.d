examples/remote_attestation.ml: Attestation Fmt Host List String Vtpm_access Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util
