examples/measured_boot.mli:
