examples/cloud_tenants.mli:
