examples/migration.mli:
