examples/migration.ml: Fmt Host Monitor Result String Vtpm_access Vtpm_mgr Vtpm_tpm Vtpm_util
