examples/quickstart.ml: Audit Fmt Host List Monitor String Vtpm_access Vtpm_crypto Vtpm_tpm Vtpm_util
