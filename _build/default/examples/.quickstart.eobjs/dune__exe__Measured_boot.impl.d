examples/measured_boot.ml: Audit Fmt Host List Monitor Policy String Vtpm_access Vtpm_mgr Vtpm_tpm Vtpm_xen
