examples/quickstart.mli:
