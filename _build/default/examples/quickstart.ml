(* Quickstart: boot a host with the improved vTPM monitor, create a guest
   with an attached vTPM, and exercise the basics — measure, seal, unseal,
   quote — through the public API.

   Run with:  dune exec examples/quickstart.exe *)

open Vtpm_access

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %a" what Vtpm_tpm.Client.pp_error e)

let () =
  (* 1. A host = hypervisor + vTPM manager + reference monitor. *)
  let host = Host.create ~mode:Host.Improved_mode ~seed:2026 ~rsa_bits:256 () in
  Fmt.pr "host up in %s mode@." (Host.mode_name host.Host.mode);

  (* 2. A guest with a vTPM bound at build time. *)
  let guest = Host.create_guest_exn host ~name:"demo-vm" ~label:"tenant_demo" () in
  Fmt.pr "guest %s: domid=%d vtpm=%d@." guest.Host.name guest.Host.domid guest.Host.vtpm_id;

  (* 3. The guest talks TPM 1.2 through its split-driver frontend. *)
  let tpm = Host.guest_client host guest in

  (* Measured boot: fold the kernel digest into PCR 10. *)
  let pcr10 = ok "measure" (Vtpm_tpm.Client.measure tpm ~pcr:10 ~event:"vmlinuz-demo") in
  Fmt.pr "PCR10 after boot measurement: %s@." (Vtpm_util.Hex.encode pcr10);

  (* Own the vTPM: this creates the Storage Root Key. *)
  let owner_auth = Vtpm_crypto.Sha1.digest "demo-owner-password" in
  let srk_auth = Vtpm_crypto.Sha1.digest "demo-srk-password" in
  let srk_pub = ok "take_ownership" (Vtpm_tpm.Client.take_ownership tpm ~owner_auth ~srk_auth) in
  Fmt.pr "vTPM owned; SRK fingerprint %s@."
    (Vtpm_util.Hex.fingerprint (Vtpm_crypto.Rsa.fingerprint srk_pub));

  (* 4. Seal a secret to the current PCR state. *)
  let blob_auth = Vtpm_crypto.Sha1.digest "demo-blob-password" in
  let sess = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:srk_auth) in
  let sealed =
    ok "seal"
      (Vtpm_tpm.Client.seal ~continue:false tpm sess ~key:Vtpm_tpm.Types.kh_srk
         ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [ 10 ])
         ~blob_auth ~data:"the database master key")
  in
  Fmt.pr "sealed %d plaintext bytes into a %d-byte blob bound to PCR10@." 23 (String.length sealed);

  (* ... and get it back. *)
  let ks = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:srk_auth) in
  let ds = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:blob_auth) in
  let plain =
    ok "unseal"
      (Vtpm_tpm.Client.unseal tpm ~key_session:ks ~data_session:ds ~key:Vtpm_tpm.Types.kh_srk
         ~blob:sealed)
  in
  Fmt.pr "unsealed: %S@." plain;

  (* 5. Remote attestation: create a signing key and quote PCR 0+10. *)
  let aik_auth = Vtpm_crypto.Sha1.digest "demo-aik-password" in
  let osap =
    ok "osap" (Vtpm_tpm.Client.start_osap tpm ~entity_handle:Vtpm_tpm.Types.kh_srk ~usage_secret:srk_auth)
  in
  let blob, _pub =
    ok "create_wrap_key"
      (Vtpm_tpm.Client.create_wrap_key tpm osap ~parent:Vtpm_tpm.Types.kh_srk
         ~usage:Vtpm_tpm.Types.Signing ~key_auth:aik_auth ())
  in
  let aik = ok "load_key2" (Vtpm_tpm.Client.load_key2 ~continue:false tpm osap ~parent:Vtpm_tpm.Types.kh_srk ~blob) in
  let verifier_nonce = Vtpm_crypto.Sha1.digest "challenge-from-verifier" in
  let qs = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:aik_auth) in
  let composite, signature, pub =
    ok "quote"
      (Vtpm_tpm.Client.quote ~continue:false tpm qs ~key:aik ~external_data:verifier_nonce
         ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [ 0; 10 ]))
  in
  let verified =
    Vtpm_tpm.Engine.verify_quote ~pubkey:pub ~composite ~external_data:verifier_nonce ~signature
  in
  Fmt.pr "quote over PCR{0,10}: %s@." (if verified then "VERIFIED" else "BROKEN");

  (* 6. What the monitor saw. *)
  let monitor = Host.monitor_exn host in
  Fmt.pr "@.monitor audit log (%d entries, head %s):@."
    (Audit.length monitor.Monitor.audit)
    (Vtpm_util.Hex.fingerprint (Audit.head monitor.Monitor.audit));
  List.iter
    (fun e -> Fmt.pr "  %a@." Audit.pp_entry e)
    (Audit.entries monitor.Monitor.audit);
  Fmt.pr "@.quickstart done; simulated time elapsed: %.1f ms@."
    (Host.now_us host /. 1000.0)
