(* vTPM migration between two hosts, with a man-in-the-middle tapping the
   stream: plaintext (baseline) vs protected-to-destination-TPM (improved),
   plus a hijack attempt where the attacker redirects the stream to a
   platform of their own.

   Run with:  dune exec examples/migration.exe *)

open Vtpm_access

let ok what = function Ok v -> v | Error e -> failwith (what ^ ": " ^ e)

let provision host name =
  let guest = Host.create_guest_exn host ~name ~label:("tenant_" ^ name) () in
  let tpm = Host.guest_client host guest in
  (match Vtpm_tpm.Client.measure tpm ~pcr:10 ~event:(name ^ "-workload") with
  | Ok _ -> ()
  | Error e -> failwith (Fmt.str "measure: %a" Vtpm_tpm.Client.pp_error e));
  guest

let pcr10_of mgr vtpm_id =
  let inst = Result.get_ok (Vtpm_mgr.Manager.find mgr vtpm_id) in
  Result.get_ok (Vtpm_tpm.Engine.pcr_value inst.Vtpm_mgr.Manager.engine 10)

let () =
  Fmt.pr "=== baseline: plaintext migration ===@.";
  let src = Host.create ~mode:Host.Baseline_mode ~seed:301 ~rsa_bits:256 () in
  let dst = Host.create ~mode:Host.Baseline_mode ~seed:302 ~rsa_bits:256 () in
  let g = provision src "legacy-app" in
  let marker = pcr10_of src.Host.mgr g.Host.vtpm_id in
  Fmt.pr "source vTPM PCR10 = %s@." (Vtpm_util.Hex.fingerprint marker);
  let stream =
    match
      Host.management src ~process:"xm-migrate" ~token:""
        (Monitor.Migrate_out { vtpm_id = g.Host.vtpm_id; dest_key = None })
    with
    | Ok (Monitor.M_blob s) -> s
    | _ -> failwith "migrate-out failed"
  in
  Fmt.pr "stream on the wire: %d bytes@." (String.length stream);
  (* Eve taps the wire. *)
  (match Vtpm_mgr.Migration.snoop stream with
  | Ok engine ->
      Fmt.pr "EVE: recovered the full TPM state from the stream (PCR10 = %s)@."
        (Vtpm_util.Hex.fingerprint (Result.get_ok (Vtpm_tpm.Engine.pcr_value engine 10)))
  | Error m -> Fmt.pr "EVE: %s@." m);
  (match
     Host.management dst ~process:"xm-migrate" ~token:"" (Monitor.Migrate_in { stream })
   with
  | Ok (Monitor.M_instance id) ->
      Fmt.pr "destination: instance %d live, PCR10 = %s@." id
        (Vtpm_util.Hex.fingerprint (pcr10_of dst.Host.mgr id))
  | _ -> failwith "migrate-in failed");

  Fmt.pr "@.=== improved: stream protected to the destination platform ===@.";
  let src = Host.create ~mode:Host.Improved_mode ~seed:303 ~rsa_bits:256 () in
  let dst = Host.create ~mode:Host.Improved_mode ~seed:304 ~rsa_bits:256 () in
  let eve_box = Host.create ~mode:Host.Improved_mode ~seed:305 ~rsa_bits:256 () in
  let g = provision src "modern-app" in
  let marker = pcr10_of src.Host.mgr g.Host.vtpm_id in
  Fmt.pr "source vTPM PCR10 = %s@." (Vtpm_util.Hex.fingerprint marker);
  let dest_key = Vtpm_mgr.Migration.bind_pubkey dst.Host.mgr in
  let stream =
    match
      Host.management src ~process:Host.manager_process ~token:(Host.manager_token src)
        (Monitor.Migrate_out { vtpm_id = g.Host.vtpm_id; dest_key = Some dest_key })
    with
    | Ok (Monitor.M_blob s) -> s
    | Ok _ -> failwith "unexpected result"
    | Error e -> failwith e
  in
  Fmt.pr "stream on the wire: %d bytes@." (String.length stream);
  (match Vtpm_mgr.Migration.snoop stream with
  | Ok _ -> Fmt.pr "EVE: recovered state (should not happen!)@."
  | Error m -> Fmt.pr "EVE: %s@." m);
  (* Eve also tries to import the captured stream on her own platform. *)
  (match
     Host.management eve_box ~process:Host.manager_process ~token:(Host.manager_token eve_box)
       (Monitor.Migrate_in { stream })
   with
  | Ok _ -> Fmt.pr "EVE: imported on her own box (should not happen!)@."
  | Error e -> Fmt.pr "EVE: import on her platform fails — %s@." e);
  (* The legitimate destination succeeds. *)
  let id =
    match
      Host.management dst ~process:Host.manager_process ~token:(Host.manager_token dst)
        (Monitor.Migrate_in { stream })
    with
    | Ok (Monitor.M_instance id) -> id
    | Ok _ -> failwith "unexpected result"
    | Error e -> failwith e
  in
  Fmt.pr "destination: instance %d live, PCR10 = %s (matches source: %b)@." id
    (Vtpm_util.Hex.fingerprint (pcr10_of dst.Host.mgr id))
    (String.equal marker (pcr10_of dst.Host.mgr id));
  ignore (ok "sanity" (Ok ()))
