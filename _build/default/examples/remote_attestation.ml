(* Remote attestation, end to end: a relying party challenges a guest,
   the guest answers with a vTPM quote + its measurement event log + a
   hardware deep quote, and the verifier replays the log against a
   whitelist before trusting the service.

   Run with:  dune exec examples/remote_attestation.exe *)

open Vtpm_access

let ok what = function
  | Ok v -> v
  | Error e -> failwith (Fmt.str "%s: %a" what Vtpm_tpm.Client.pp_error e)

let () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:555 ~rsa_bits:256 () in
  let guest = Host.create_guest_exn host ~name:"webserver" ~label:"tenant_web" () in
  let tpm = Host.guest_client host guest in

  (* --- Guest side: measured boot with an event log ------------------- *)
  let log = Vtpm_tpm.Eventlog.create () in
  let boot_chain =
    [
      ("grub-stage2", "bootloader-bytes");
      ("vmlinuz-5.x", "kernel-bytes");
      ("initrd.img", "initrd-bytes");
      ("nginx.service", "unit-file-bytes");
    ]
  in
  List.iter
    (fun (name, data) ->
      let digest =
        Vtpm_tpm.Eventlog.record log ~pcr:10 ~event_type:Vtpm_tpm.Eventlog.ev_ipl
          ~description:name ~data
      in
      ignore (ok "extend" (Vtpm_tpm.Client.extend tpm ~pcr:10 ~digest)))
    boot_chain;
  Fmt.pr "guest measured %d boot components into PCR10:@." (List.length boot_chain);
  List.iter (fun e -> Fmt.pr "  %a@." Vtpm_tpm.Eventlog.pp_event e) (Vtpm_tpm.Eventlog.events log);

  (* AIK under the SRK. *)
  let srk_auth = Vtpm_crypto.Sha1.digest "web-srk" in
  let _ = ok "own" (Vtpm_tpm.Client.take_ownership tpm ~owner_auth:"web-owner" ~srk_auth) in
  let sess =
    ok "osap" (Vtpm_tpm.Client.start_osap tpm ~entity_handle:Vtpm_tpm.Types.kh_srk ~usage_secret:srk_auth)
  in
  let aik_auth = Vtpm_crypto.Sha1.digest "web-aik" in
  let blob, aik_pub =
    ok "create"
      (Vtpm_tpm.Client.create_wrap_key tpm sess ~parent:Vtpm_tpm.Types.kh_srk
         ~usage:Vtpm_tpm.Types.Signing ~key_auth:aik_auth ())
  in
  let aik = ok "load" (Vtpm_tpm.Client.load_key2 ~continue:false tpm sess ~parent:Vtpm_tpm.Types.kh_srk ~blob) in

  (* --- Verifier side: fresh challenge -------------------------------- *)
  let nonce = Vtpm_crypto.Sha1.digest "rp-challenge-2026-07-05" in
  Fmt.pr "@.verifier sends challenge %s@." (Vtpm_util.Hex.fingerprint nonce);

  (* --- Guest answers: quote + log + deep quote ----------------------- *)
  let sel = Vtpm_tpm.Types.Pcr_selection.of_list [ 10 ] in
  let qs = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:aik_auth) in
  let composite, signature, pubkey =
    ok "quote" (Vtpm_tpm.Client.quote ~continue:false tpm qs ~key:aik ~external_data:nonce ~pcr_sel:sel)
  in
  let evidence = { Attestation.composite; signature; pubkey; pcr_sel = sel; event_log = log } in
  let deep =
    match Vtpm_mgr.Deep_quote.produce host.Host.mgr ~vtpm_quote:(composite, signature, pubkey) with
    | Ok dq -> dq
    | Error e -> failwith e
  in
  Fmt.pr "guest answers with quote (%d-byte sig), %d log events, deep quote@."
    (String.length signature) (Vtpm_tpm.Eventlog.length log);

  (* --- Verifier checks ------------------------------------------------ *)
  let vp = Attestation.policy () in
  List.iter (fun (name, data) -> Attestation.whitelist vp ~software:name ~data) boot_chain;
  Attestation.enroll_key vp aik_pub;
  Attestation.enroll_key vp deep.Vtpm_mgr.Deep_quote.hw_pubkey;
  (match Attestation.verify_deep vp ~nonce evidence deep with
  | Ok () -> Fmt.pr "@.verifier: ACCEPTED — known software stack on a hardware-rooted vTPM@."
  | Error e -> Fmt.pr "@.verifier: REJECTED — %s@." e);

  (* --- And what happens after a malware drop -------------------------- *)
  Fmt.pr "@.!! guest later loads an unapproved module and re-attests@.";
  let digest =
    Vtpm_tpm.Eventlog.record log ~pcr:10 ~event_type:Vtpm_tpm.Eventlog.ev_action
      ~description:"cryptominer.ko" ~data:"evil-bytes"
  in
  ignore (ok "extend" (Vtpm_tpm.Client.extend tpm ~pcr:10 ~digest));
  let nonce2 = Vtpm_crypto.Sha1.digest "rp-challenge-2" in
  let qs2 = ok "oiap" (Vtpm_tpm.Client.start_oiap tpm ~usage_secret:aik_auth) in
  let composite2, signature2, _ =
    ok "quote2" (Vtpm_tpm.Client.quote ~continue:false tpm qs2 ~key:aik ~external_data:nonce2 ~pcr_sel:sel)
  in
  let evidence2 =
    { evidence with Attestation.composite = composite2; signature = signature2 }
  in
  (match Attestation.verify vp ~nonce:nonce2 evidence2 with
  | Ok () -> Fmt.pr "verifier: accepted (should not happen!)@."
  | Error f -> Fmt.pr "verifier: REJECTED — %a@." Attestation.pp_failure f)
