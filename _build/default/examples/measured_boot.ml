(* Measurement-gated vTPM access: a `when measured` policy ties a guest's
   vTPM service to its boot-time kernel digest. A rootkitted guest loses
   access the moment its kernel no longer matches the reference recorded
   at bind time; an administrator re-baselines it with a rebind.

   Run with:  dune exec examples/measured_boot.exe *)

open Vtpm_access

let measured_policy =
  Policy.parse_exn
    (String.concat "\n"
       [
         "# vTPM policy: everything useful requires an untampered kernel";
         "default deny";
         "allow guest:* class:session";
         "allow guest:* class:info";
         "allow guest:* class:measurement when measured";
         "allow guest:* class:sealing when measured";
         "allow guest:* class:attestation when measured";
         "allow guest:* class:keys when measured";
         "allow guest:* class:random when measured";
         "allow guest:* class:ownership when measured";
         "allow dom0:vtpm-manager *";
       ])

let try_pcr_read tpm label =
  match Vtpm_tpm.Client.pcr_read tpm ~pcr:0 with
  | Ok _ -> Fmt.pr "  %s: vTPM access GRANTED@." label
  | Error e -> Fmt.pr "  %s: error %a@." label Vtpm_tpm.Client.pp_error e
  | exception Vtpm_mgr.Driver.Denied reason -> Fmt.pr "  %s: DENIED (%s)@." label reason

let () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:404 ~rsa_bits:256 () in
  let monitor = Host.monitor_exn host in
  Monitor.set_policy monitor measured_policy;
  (match Policy.validate measured_policy with
  | [] -> Fmt.pr "policy loaded: %d rules, no lint findings@." (Policy.rule_count measured_policy)
  | lints ->
      Fmt.pr "policy loaded with lints:@.";
      List.iter (fun l -> Fmt.pr "  %a@." Policy.pp_lint l) lints);

  let guest = Host.create_guest_exn host ~name:"gateway" ~label:"tenant_gw" () in
  let tpm = Host.guest_client host guest in
  Fmt.pr "@.guest booted with kernel 'vmlinuz-5.x-tenant'; binding recorded its digest@.";
  try_pcr_read tpm "clean guest";

  (* The rootkit arrives. *)
  Fmt.pr "@.!! rootkit modifies the guest kernel in place@.";
  let dom = Vtpm_xen.Hypervisor.domain_exn host.Host.xen guest.Host.domid in
  Vtpm_xen.Domain.set_kernel dom ~image:"vmlinuz-5.x-tenant + rootkit";
  try_pcr_read tpm "tampered guest";

  (* Sessions (needed to even negotiate) stay available, as the policy
     intends — only data-bearing classes are gated. *)
  (match Vtpm_tpm.Client.exchange tpm Vtpm_tpm.Cmd.Oiap with
  | Ok _ -> Fmt.pr "  tampered guest: session setup still allowed (by design)@."
  | Error _ | (exception Vtpm_mgr.Driver.Denied _) ->
      Fmt.pr "  tampered guest: session setup denied@.");

  (* Incident response: admin restores the kernel and re-baselines. *)
  Fmt.pr "@.admin restores the kernel from a known-good image and rebinds@.";
  Vtpm_xen.Domain.set_kernel dom ~image:"vmlinuz-5.x-tenant-v2";
  (match
     Host.management host ~process:Host.manager_process ~token:(Host.manager_token host)
       (Monitor.Rebind { vtpm_id = guest.Host.vtpm_id; new_domid = guest.Host.domid })
   with
  | Ok _ -> Fmt.pr "  rebind done; new reference measurement recorded@."
  | Error e -> Fmt.pr "  rebind failed: %s@." e);
  try_pcr_read tpm "re-baselined guest";

  (* The whole incident is in the audit log. *)
  Fmt.pr "@.audit trail of the incident:@.";
  List.iter
    (fun (e : Audit.entry) -> Fmt.pr "  %a@." Audit.pp_entry e)
    (List.filteri (fun i _ -> i < 60) (Audit.entries monitor.Monitor.audit))
