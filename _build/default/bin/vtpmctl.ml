(* vtpmctl: drive the simulated Xen vTPM stack from the command line.

     vtpmctl attacks  [--mode MODE]          run the attack battery
     vtpmctl workload [--mode MODE] [--vms N] [--ops N] [--mix MIX]
     vtpmctl policy-lint [FILE]              parse + lint a policy (stdin default)
     vtpmctl demo     [--mode MODE]          one guest, basic vTPM session, audit dump
*)

open Cmdliner
open Vtpm_access

let mode_conv =
  let parse = function
    | "baseline" -> Ok Host.Baseline_mode
    | "improved" -> Ok Host.Improved_mode
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S (expected baseline|improved)" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Host.mode_name m))

let mode_arg =
  Arg.(value & opt mode_conv Host.Improved_mode & info [ "m"; "mode" ] ~docv:"MODE"
         ~doc:"Manager mode: $(b,baseline) (2006 design) or $(b,improved) (this paper).")

(* --- attacks ----------------------------------------------------------------- *)

let run_attacks mode =
  Fmt.pr "attack battery against the %s manager:@." (Host.mode_name mode);
  let outcomes = Vtpm_attacks.Attack.run_battery ~mode in
  List.iter (fun o -> Fmt.pr "  %a@." Vtpm_attacks.Attack.pp_outcome o) outcomes;
  let wins = List.length (List.filter (fun o -> o.Vtpm_attacks.Attack.succeeded) outcomes) in
  Fmt.pr "attacker wins: %d/%d@." wins (List.length outcomes);
  if wins > 0 && mode = Host.Improved_mode then exit 1

let attacks_cmd =
  Cmd.v (Cmd.info "attacks" ~doc:"Run the security evaluation (Table 2 scenarios).")
    Term.(const run_attacks $ mode_arg)

(* --- workload ----------------------------------------------------------------- *)

let mix_conv =
  let parse = function
    | "mixed" -> Ok Vtpm_sim.Workload.mixed
    | "attestation" -> Ok Vtpm_sim.Workload.attestation_heavy
    | "sealing" -> Ok Vtpm_sim.Workload.sealing_heavy
    | s -> Error (`Msg (Printf.sprintf "unknown mix %S" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Vtpm_sim.Workload.mix_name m))

let run_workload mode vms ops mix =
  Fmt.pr "workload: %d VM(s), %d ops/VM, %s mix, %s manager@." vms ops
    (Vtpm_sim.Workload.mix_name mix) (Host.mode_name mode);
  let host, tenants = Vtpm_sim.Workload.make_host_with_tenants ~mode ~n:vms () in
  let r = Vtpm_sim.Workload.run host ~tenants ~mix ~ops_per_tenant:ops () in
  Fmt.pr "ran %d ops (%d failures) in %.1f simulated ms — %.1f ops/s@." r.Vtpm_sim.Workload.ops_run
    r.Vtpm_sim.Workload.failures
    (r.Vtpm_sim.Workload.elapsed_us /. 1000.0)
    r.Vtpm_sim.Workload.throughput_ops_s;
  Fmt.pr "latency: %a@." Vtpm_sim.Metrics.pp_summary r.Vtpm_sim.Workload.overall;
  List.iter
    (fun (op, (s : Vtpm_sim.Metrics.summary)) ->
      if s.Vtpm_sim.Metrics.n > 0 then
        Fmt.pr "  %-10s %a@." (Vtpm_sim.Tenant.op_name op) Vtpm_sim.Metrics.pp_summary s)
    r.Vtpm_sim.Workload.per_op;
  match host.Host.monitor with
  | Some m ->
      let s = Monitor.stats m in
      Fmt.pr "monitor: %d lookups, %d cache hits, %d rules scanned, %d denied@."
        s.Monitor.lookups s.Monitor.cache_hits s.Monitor.rules_scanned s.Monitor.denied
  | None -> ()

let workload_cmd =
  let vms = Arg.(value & opt int 4 & info [ "vms" ] ~docv:"N" ~doc:"Number of guest VMs.") in
  let ops = Arg.(value & opt int 100 & info [ "ops" ] ~docv:"N" ~doc:"Operations per VM.") in
  let mix =
    Arg.(value & opt mix_conv Vtpm_sim.Workload.mixed & info [ "mix" ] ~docv:"MIX"
           ~doc:"Operation mix: $(b,mixed), $(b,attestation) or $(b,sealing).")
  in
  Cmd.v (Cmd.info "workload" ~doc:"Run a synthetic vTPM workload and report latencies.")
    Term.(const run_workload $ mode_arg $ vms $ ops $ mix)

(* --- policy-lint -------------------------------------------------------------- *)

let read_whole_channel ic =
  let buf = Buffer.create 1024 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let run_policy_lint file =
  let source =
    match file with
    | Some path ->
        let ic = open_in path in
        let s = read_whole_channel ic in
        close_in ic;
        s
    | None -> read_whole_channel stdin
  in
  match Policy.parse source with
  | Error e ->
      Fmt.epr "parse error: %a@." Policy.pp_parse_error e;
      exit 1
  | Ok p -> (
      Fmt.pr "parsed: %d rules, default %s@." (Policy.rule_count p)
        (match Policy.default_verdict p with Policy.Allow -> "allow" | Policy.Deny -> "deny");
      match Policy.validate p with
      | [] -> Fmt.pr "no findings@."
      | lints ->
          List.iter (fun l -> Fmt.pr "finding: %a@." Policy.pp_lint l) lints;
          exit 2)

let policy_lint_cmd =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Policy file; reads standard input when omitted.")
  in
  Cmd.v (Cmd.info "policy-lint" ~doc:"Parse and lint a vTPM access policy.")
    Term.(const run_policy_lint $ file)

(* --- audit-verify --------------------------------------------------------------- *)

let run_audit_verify file head_hex =
  let source =
    match file with
    | Some path ->
        let ic = open_in path in
        let s = read_whole_channel ic in
        close_in ic;
        s
    | None -> read_whole_channel stdin
  in
  match Audit.import source with
  | Error m ->
      Fmt.epr "cannot parse audit export: %s@." m;
      exit 1
  | Ok entries -> (
      let expected_head = Option.map Vtpm_util.Hex.decode head_hex in
      match Audit.verify_chain ?expected_head entries with
      | Ok () ->
          Fmt.pr "audit chain OK: %d entries%s@." (List.length entries)
            (match head_hex with Some _ -> ", anchored head matches" | None -> "")
      | Error (-1) ->
          Fmt.epr "chain intact but does not end at the given head (truncated or stale)@.";
          exit 2
      | Error seq ->
          Fmt.epr "chain broken at entry %d@." seq;
          exit 2)

let audit_verify_cmd =
  let file =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"Audit export (from Export_audit / Audit.export); stdin when omitted.")
  in
  let head =
    Arg.(value & opt (some string) None & info [ "head" ] ~docv:"HEX"
           ~doc:"Expected chain head (e.g. from a hardware anchor), hex-encoded.")
  in
  Cmd.v
    (Cmd.info "audit-verify" ~doc:"Verify the hash chain of an exported audit log.")
    Term.(const run_audit_verify $ file $ head)

(* --- demo --------------------------------------------------------------------- *)

let run_demo mode =
  let host = Host.create ~mode ~seed:7 ~rsa_bits:256 () in
  let guest = Host.create_guest_exn host ~name:"demo" ~label:"tenant_demo" () in
  let tpm = Host.guest_client host guest in
  let pr_result what run =
    match run () with
    | Ok _ -> Fmt.pr "  %-20s ok@." what
    | Error e -> Fmt.pr "  %-20s %a@." what Vtpm_tpm.Client.pp_error e
    | exception Vtpm_mgr.Driver.Denied r -> Fmt.pr "  %-20s denied: %s@." what r
  in
  Fmt.pr "demo guest on %s manager (domid %d, vTPM %d)@." (Host.mode_name mode) guest.Host.domid
    guest.Host.vtpm_id;
  pr_result "measure" (fun () -> Vtpm_tpm.Client.measure tpm ~pcr:10 ~event:"demo");
  pr_result "pcr_read" (fun () -> Vtpm_tpm.Client.pcr_read tpm ~pcr:10);
  pr_result "get_random" (fun () -> Vtpm_tpm.Client.get_random tpm ~length:16);
  pr_result "save_state (admin)" (fun () -> Vtpm_tpm.Client.save_state tpm);
  match host.Host.monitor with
  | None -> Fmt.pr "(baseline manager: no audit log)@."
  | Some m ->
      Fmt.pr "audit:@.";
      List.iter (fun e -> Fmt.pr "  %a@." Audit.pp_entry e) (Audit.entries m.Monitor.audit)

let demo_cmd =
  Cmd.v (Cmd.info "demo" ~doc:"Create a guest and run a short vTPM session.")
    Term.(const run_demo $ mode_arg)

let () =
  let info =
    Cmd.info "vtpmctl" ~version:"1.0.0"
      ~doc:"Drive the simulated Xen vTPM stack (vTPM access control reproduction)."
  in
  exit
    (Cmd.eval
       (Cmd.group info [ demo_cmd; attacks_cmd; workload_cmd; policy_lint_cmd; audit_verify_cmd ]))
