lib/vtpm/manager.mli: Hashtbl Vtpm_tpm Vtpm_util Vtpm_xen
