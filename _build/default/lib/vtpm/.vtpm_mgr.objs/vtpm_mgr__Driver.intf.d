lib/vtpm/driver.mli: Proto Vtpm_tpm Vtpm_xen
