lib/vtpm/deep_quote.mli: Manager Vtpm_crypto Vtpm_tpm
