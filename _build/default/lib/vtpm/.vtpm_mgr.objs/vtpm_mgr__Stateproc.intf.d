lib/vtpm/stateproc.mli: Manager Vtpm_tpm
