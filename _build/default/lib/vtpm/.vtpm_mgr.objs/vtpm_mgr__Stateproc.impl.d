lib/vtpm/stateproc.ml: Client Engine Fmt Hashtbl Manager Result String Types Vtpm_crypto Vtpm_tpm Vtpm_util
