lib/vtpm/driver.ml: Domain Evtchn Gnttab Hypervisor List Printf Proto Ring Vtpm_tpm Vtpm_util Vtpm_xen Xenstore
