lib/vtpm/migration.mli: Manager Vtpm_crypto Vtpm_tpm
