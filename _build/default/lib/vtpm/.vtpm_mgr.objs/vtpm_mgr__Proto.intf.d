lib/vtpm/proto.mli:
