lib/vtpm/migration.ml: Client Engine Hashtbl Keystore Manager String Vtpm_crypto Vtpm_tpm Vtpm_util
