lib/vtpm/manager.ml: Client Cmd Engine Hashtbl List Printf Stdlib Types Vtpm_crypto Vtpm_tpm Vtpm_util Vtpm_xen Wire
