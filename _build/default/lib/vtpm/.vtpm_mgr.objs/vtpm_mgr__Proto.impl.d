lib/vtpm/proto.ml: Char String Vtpm_util
