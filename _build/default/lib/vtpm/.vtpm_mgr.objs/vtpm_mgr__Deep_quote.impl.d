lib/vtpm/deep_quote.ml: Client Engine Fmt Manager Result Types Vtpm_crypto Vtpm_tpm
