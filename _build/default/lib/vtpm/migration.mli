(** vTPM migration between hosts.

    Baseline: state crosses the wire in the clear. Improved: the stream is
    encrypted to the *destination's* hardware TPM (TPM_Unbind semantics on
    arrival); a captured stream is useless without that platform. *)

type mode = Plaintext | Protected

val mode_name : mode -> string

val bind_pubkey : Manager.t -> Vtpm_crypto.Rsa.public
(** The destination's migration endpoint: the public half of a key whose
    private half its hardware TPM holds.
    @raise Invalid_argument when the hw TPM has no owner. *)

val export :
  Manager.t ->
  Manager.instance ->
  mode:mode ->
  dest_key:Vtpm_crypto.Rsa.public option ->
  (string, string) result
(** Produce the migration stream. [Protected] requires [dest_key]. *)

val finalize_source : Manager.t -> Manager.instance -> unit
(** Kill the source instance after export: TPM state must never run in two
    places (state-forking hazard). *)

val import : Manager.t -> string -> (Manager.instance, string) result
(** Accept a stream on the destination; protected streams only unbind on
    the platform whose key they were made for. *)

val snoop : string -> (Vtpm_tpm.Engine.t, string) result
(** What a man-in-the-middle recovers from a captured stream: the full TPM
    state for plaintext streams, an error for protected ones. Drives the
    Table 2 "migration-snoop" row. *)
