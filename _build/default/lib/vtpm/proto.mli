(** The vTPM transport protocol carried in ring slots.

    Request frame: [claimed_instance(u32) || TPM wire request]. The
    claimed instance is what the 2006 manager trusts for routing — and
    what a malicious frontend sets freely. Keeping it on the wire lets the
    baseline and improved managers consume identical traffic, so overhead
    comparisons are apples-to-apples. *)

type status =
  | Ok_routed  (** payload is a TPM wire response *)
  | Denied  (** payload is the monitor's reason *)
  | Bad_frame  (** payload describes the framing error *)

val status_code : status -> int
val status_of_code : int -> status option

val encode_request : claimed_instance:int -> string -> string
val decode_request : string -> (int * string, string) result

val encode_response : status -> string -> string
val decode_response : string -> (status * string, string) result
