(* Deep quote: link a guest's vTPM attestation to the hardware root of
   trust.

   A vTPM quote alone proves nothing about the platform — the vTPM is
   software. The deep quote chains two signatures:

     1. the guest's vTPM signs its PCR composite over the verifier's nonce;
     2. the hardware TPM signs the *manager's* PCR composite over
        SHA1(vTPM quote signature), binding (1) to this physical platform
        and this (measured) manager build.

   A verifier holding both public keys and the original nonce checks the
   chain end-to-end. *)

open Vtpm_tpm

type t = {
  vtpm_composite : string;
  vtpm_signature : string;
  vtpm_pubkey : Vtpm_crypto.Rsa.public;
  hw_composite : string;
  hw_signature : string;
  hw_pubkey : Vtpm_crypto.Rsa.public;
}

let hw_pcr_sel = Types.Pcr_selection.of_list [ Manager.manager_pcr ]

let ( let* ) = Result.bind
let to_str what e = Error (Fmt.str "%s: %a" what Client.pp_error e)

(* The manager creates (once) and caches an attestation identity key on
   the hardware TPM. For simplicity we create a fresh signing key under
   the SRK per call site that asks for one. *)
let make_hw_aik mgr : (int * string, string) result =
  let hw = Manager.hw_client mgr in
  let aik_auth = Vtpm_crypto.Sha1.digest ("hw-aik:" ^ mgr.Manager.hw_srk_auth) in
  let* sess =
    Result.fold ~ok:Result.ok ~error:(to_str "osap")
      (Client.start_osap hw ~entity_handle:Types.kh_srk ~usage_secret:mgr.Manager.hw_srk_auth)
  in
  let* blob, _ =
    Result.fold ~ok:Result.ok ~error:(to_str "create aik")
      (Client.create_wrap_key hw sess ~parent:Types.kh_srk ~usage:Types.Signing
         ~key_auth:aik_auth ())
  in
  let* handle =
    Result.fold ~ok:Result.ok ~error:(to_str "load aik")
      (Client.load_key2 ~continue:false hw sess ~parent:Types.kh_srk ~blob)
  in
  Ok (handle, aik_auth)

(* Produce a deep quote for a guest.

   [guest_quote] is the guest-side step: the caller supplies the vTPM
   quote it obtained through its own (policy-mediated!) channel, so a
   deep quote cannot be used to bypass the monitor. *)
let produce mgr ~(vtpm_quote : string * string * Vtpm_crypto.Rsa.public) : (t, string) result =
  let vtpm_composite, vtpm_signature, vtpm_pubkey = vtpm_quote in
  let hw = Manager.hw_client mgr in
  let* aik_handle, aik_auth = make_hw_aik mgr in
  let* sess =
    Result.fold ~ok:Result.ok ~error:(to_str "oiap")
      (Client.start_oiap hw ~usage_secret:aik_auth)
  in
  let link_nonce = Vtpm_crypto.Sha1.digest vtpm_signature in
  let* hw_composite, hw_signature, hw_pubkey =
    Result.fold ~ok:Result.ok ~error:(to_str "hw quote")
      (Client.quote ~continue:false hw sess ~key:aik_handle ~external_data:link_nonce
         ~pcr_sel:hw_pcr_sel)
  in
  Ok { vtpm_composite; vtpm_signature; vtpm_pubkey; hw_composite; hw_signature; hw_pubkey }

(* Verifier side: [nonce] is the fresh challenge originally sent to the
   guest. Checks both signatures and the linkage. *)
let verify (dq : t) ~(nonce : string) : bool =
  Engine.verify_quote ~pubkey:dq.vtpm_pubkey ~composite:dq.vtpm_composite ~external_data:nonce
    ~signature:dq.vtpm_signature
  && Engine.verify_quote ~pubkey:dq.hw_pubkey ~composite:dq.hw_composite
       ~external_data:(Vtpm_crypto.Sha1.digest dq.vtpm_signature)
       ~signature:dq.hw_signature
