(** The vTPM split driver: frontend in the guest, backend in the manager
    domain, connected by a granted ring page and an event channel, wired
    through XenStore in the standard Xen device handshake.

    XenStore layout under [/local/domain/<fe>/device/vtpm/0]:
    [backend-id], [instance] (dom0-owned, guest-readable), [ring-ref],
    [event-channel] (guest-written). The frontend reads [instance] and
    stamps it into every frame — the baseline manager's routing input, and
    the re-pointing hole the improved monitor closes. *)

type connection = {
  ring : Vtpm_xen.Ring.t;
  fe_domid : Vtpm_xen.Domain.domid;
  be_domid : Vtpm_xen.Domain.domid;
  fe_port : Vtpm_xen.Evtchn.port;
  be_port : Vtpm_xen.Evtchn.port;
  gref : Vtpm_xen.Gnttab.gref;
  mutable connected : bool;
}

type router =
  sender:Vtpm_xen.Domain.domid -> claimed_instance:int -> wire:string -> (string, string) result
(** Routing decision + execution, supplied by the access-control layer.
    [sender] is the hypervisor-attested frontend; [Ok] carries the TPM
    wire response, [Error] a denial reason. *)

type backend = {
  xen : Vtpm_xen.Hypervisor.t;
  be_domid : Vtpm_xen.Domain.domid;
  mutable connections : connection list;
  mutable router : router;
}

val vtpm_fe_path : Vtpm_xen.Domain.domid -> string

val create_backend :
  xen:Vtpm_xen.Hypervisor.t -> be_domid:Vtpm_xen.Domain.domid -> router:router -> backend

val publish_device :
  xen:Vtpm_xen.Hypervisor.t -> fe:Vtpm_xen.Domain.domid -> be:Vtpm_xen.Domain.domid ->
  instance:int -> (unit, string) result
(** Toolstack step (as dom0): create the device directory (guest-owned)
    and the control nodes (dom0-owned, guest-readable). *)

val connect : backend -> fe_domid:Vtpm_xen.Domain.domid -> (connection, string) result
(** Frontend step: allocate and grant the ring, bind the event channel,
    publish [ring-ref]/[event-channel], register with the backend. *)

val disconnect : backend -> connection -> unit
val disconnect_domain : backend -> fe_domid:Vtpm_xen.Domain.domid -> unit

val process_pending : backend -> int
(** Drain every connected ring, route, respond; returns the number of
    requests processed. The sender passed to the router is the ring's
    recorded frontend — unforgeable from inside a frame. *)

val request : backend -> connection -> wire:string -> (Proto.status * string, string) result
(** Frontend-side synchronous exchange: reads the claimed instance from
    XenStore (as the real frontend does), frames, kicks the backend,
    collects the response. *)

exception Denied of string
(** Raised by {!client_transport} when the monitor denies a request, so
    callers can tell denial from TPM errors. *)

val client_transport : backend -> connection -> Vtpm_tpm.Client.transport
