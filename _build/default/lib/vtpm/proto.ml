(* The vTPM transport protocol carried in ring slots.

   Request frame:  claimed_instance(u32) || TPM wire request
   Response frame: status(u8) || payload

   [claimed_instance] is the field the 2006-era manager trusts to route a
   request — and the field a malicious frontend can set to any value. The
   improved monitor ignores it in favour of the hypervisor-attested sender
   identity; keeping it on the wire lets both managers consume identical
   traffic, so the overhead comparison is apples-to-apples. *)

module C = Vtpm_util.Codec

type status = Ok_routed | Denied | Bad_frame

let status_code = function Ok_routed -> 0 | Denied -> 1 | Bad_frame -> 2

let status_of_code = function 0 -> Some Ok_routed | 1 -> Some Denied | 2 -> Some Bad_frame | _ -> None

let encode_request ~claimed_instance (wire : string) : string =
  let w = C.writer () in
  C.write_u32_int w claimed_instance;
  C.write_bytes w wire;
  C.contents w

let decode_request (frame : string) : (int * string, string) result =
  if String.length frame < 4 then Error "short vTPM frame"
  else begin
    let r = C.reader frame in
    let claimed = C.read_u32_int r in
    Ok (claimed, String.sub frame 4 (String.length frame - 4))
  end

let encode_response (st : status) (payload : string) : string =
  let w = C.writer () in
  C.write_u8 w (status_code st);
  C.write_bytes w payload;
  C.contents w

let decode_response (frame : string) : (status * string, string) result =
  if String.length frame < 1 then Error "empty vTPM response"
  else
    match status_of_code (Char.code frame.[0]) with
    | None -> Error "bad vTPM status byte"
    | Some st -> Ok (st, String.sub frame 1 (String.length frame - 1))
