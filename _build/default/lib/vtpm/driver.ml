(* The vTPM split driver: frontend in the guest, backend in the manager
   domain, connected by a granted ring page and an event channel, wired up
   through XenStore in the standard Xen device handshake.

   XenStore layout (written by the dom0 toolstack at attach time):

     /local/domain/<fe>/device/vtpm/0/backend-id   = <be domid>
     /local/domain/<fe>/device/vtpm/0/instance     = <vTPM instance id>
     /local/domain/<fe>/device/vtpm/0/ring-ref     = <gref>
     /local/domain/<fe>/device/vtpm/0/event-channel= <port>

   The frontend reads `instance` and stamps it into every request frame —
   the baseline manager's routing input. The node is dom0-writable (all of
   XenStore is), which is exactly the re-pointing hole the improved
   monitor closes by routing on the hypervisor-attested sender instead. *)

open Vtpm_xen

type connection = {
  ring : Ring.t;
  fe_domid : Domain.domid;
  be_domid : Domain.domid;
  fe_port : Evtchn.port;
  be_port : Evtchn.port;
  gref : Gnttab.gref;
  mutable connected : bool;
}

(* Routing decision + execution, supplied by the access-control layer. *)
type router =
  sender:Domain.domid -> claimed_instance:int -> wire:string -> (string, string) result

type backend = {
  xen : Hypervisor.t;
  be_domid : Domain.domid;
  mutable connections : connection list;
  mutable router : router;
}

let vtpm_fe_path fe = Printf.sprintf "/local/domain/%d/device/vtpm/0" fe

let create_backend ~xen ~be_domid ~router = { xen; be_domid; connections = []; router }

(* Toolstack step: publish the device nodes for a new vTPM attachment.
   Runs as dom0. The guest may read its own device directory. *)
let publish_device ~(xen : Hypervisor.t) ~fe ~be ~instance : (unit, string) result =
  let base = vtpm_fe_path fe in
  let wr k v =
    match Hypervisor.xs_write xen ~caller:Hypervisor.dom0_id (base ^ "/" ^ k) v with
    | Ok () -> Ok ()
    | Error e -> Error (Xenstore.error_name e)
  in
  (* The frontend device directory belongs to the guest (it publishes its
     ring-ref and event-channel there); specific control nodes below are
     re-owned by dom0 afterwards. *)
  ignore (Xenstore.mkdir xen.Hypervisor.store ~caller:Hypervisor.dom0_id base);
  ignore
    (Xenstore.set_perms xen.Hypervisor.store ~caller:Hypervisor.dom0_id base ~owner:fe
       ~others:Xenstore.Pnone ~acl:[]);
  match wr "backend-id" (string_of_int be) with
  | Error e -> Error e
  | Ok () -> (
      match wr "instance" (string_of_int instance) with
      | Error e -> Error e
      | Ok () ->
          (* Guest must be able to read (not write) its device nodes. *)
          List.iter
            (fun k ->
              ignore
                (Xenstore.set_perms xen.Hypervisor.store ~caller:Hypervisor.dom0_id
                   (base ^ "/" ^ k) ~owner:Hypervisor.dom0_id ~others:Xenstore.Pnone
                   ~acl:[ (fe, Xenstore.Pread) ]))
            [ "backend-id"; "instance" ];
          Ok ())

(* Frontend step: allocate the ring, grant it, bind the event channel and
   publish the connection details. Returns the live connection and
   registers it with the backend. *)
let connect (backend : backend) ~(fe_domid : Domain.domid) : (connection, string) result =
  let xen = backend.xen in
  let base = vtpm_fe_path fe_domid in
  match Hypervisor.xs_read xen ~caller:fe_domid (base ^ "/backend-id") with
  | Error e -> Error ("frontend cannot read backend-id: " ^ Xenstore.error_name e)
  | Ok be_str -> (
      match int_of_string_opt be_str with
      | None -> Error "malformed backend-id"
      | Some be_domid ->
          let ring_frame = 100 + fe_domid in
          let gref =
            Hypervisor.grant xen ~owner:fe_domid ~grantee:be_domid ~frame:ring_frame
              ~access:Gnttab.Read_write
          in
          let fe_port, be_port = Hypervisor.bind_evtchn xen ~a:fe_domid ~b:be_domid in
          (* Backend maps the grant; identity of the granter is checked by
             the hypervisor. *)
          (match Hypervisor.map_grant xen ~caller:be_domid ~owner:fe_domid ~gref with
          | Error e -> Error ("backend cannot map ring: " ^ e)
          | Ok (_frame, _access) ->
              let ring = Ring.create ~frontend:fe_domid ~backend:be_domid () in
              let conn =
                { ring; fe_domid; be_domid; fe_port; be_port; gref; connected = true }
              in
              ignore (Hypervisor.xs_write xen ~caller:fe_domid (base ^ "/ring-ref") (string_of_int gref));
              ignore
                (Hypervisor.xs_write xen ~caller:fe_domid (base ^ "/event-channel")
                   (string_of_int fe_port));
              backend.connections <- conn :: backend.connections;
              Ok conn))

let disconnect (backend : backend) (conn : connection) =
  conn.connected <- false;
  Evtchn.close backend.xen.Hypervisor.evtchn ~domid:conn.fe_domid ~port:conn.fe_port;
  backend.connections <- List.filter (fun c -> c != conn) backend.connections

let disconnect_domain (backend : backend) ~(fe_domid : Domain.domid) =
  List.iter
    (fun c -> if c.fe_domid = fe_domid then disconnect backend c)
    backend.connections

(* Backend pump: drain every connected ring, route, respond. The sender
   identity passed to the router is the ring's frontend — recorded by the
   hypervisor-mediated connect, unforgeable from inside the frame. *)
let process_pending (backend : backend) : int =
  let processed = ref 0 in
  List.iter
    (fun conn ->
      if conn.connected then begin
        let rec drain () =
          match Ring.pop_request conn.ring with
          | None -> ()
          | Some { Ring.id; payload } ->
              incr processed;
              let sender = Ring.frontend conn.ring in
              let reply =
                match Proto.decode_request payload with
                | Error m -> Proto.encode_response Proto.Bad_frame m
                | Ok (claimed_instance, wire) -> (
                    match backend.router ~sender ~claimed_instance ~wire with
                    | Ok resp_wire -> Proto.encode_response Proto.Ok_routed resp_wire
                    | Error reason -> Proto.encode_response Proto.Denied reason)
              in
              (match Ring.push_response conn.ring ~id reply with
              | Ok () -> ignore (Hypervisor.notify backend.xen ~domid:conn.be_domid ~port:conn.be_port)
              | Error _ -> () (* response ring full: drop, frontend times out *));
              drain ()
        in
        drain ()
      end)
    backend.connections;
  !processed

(* Frontend-side synchronous exchange: reads the claimed instance from
   XenStore (as the real frontend does), frames the request, kicks the
   backend and collects the response. *)
let request (backend : backend) (conn : connection) ~(wire : string) :
    (Proto.status * string, string) result =
  if not conn.connected then Error "vTPM frontend disconnected"
  else begin
    let xen = backend.xen in
    Vtpm_util.Cost.charge xen.Hypervisor.cost Vtpm_util.Cost.ring_round_trip_us;
    let base = vtpm_fe_path conn.fe_domid in
    match Hypervisor.xs_read xen ~caller:conn.fe_domid (base ^ "/instance") with
    | Error e -> Error ("cannot read instance: " ^ Xenstore.error_name e)
    | Ok inst_str -> (
        match int_of_string_opt inst_str with
        | None -> Error "malformed instance id"
        | Some claimed_instance -> (
            let frame = Proto.encode_request ~claimed_instance wire in
            match Ring.push_request conn.ring frame with
            | Error e -> Error e
            | Ok id -> (
                (match Hypervisor.notify xen ~domid:conn.fe_domid ~port:conn.fe_port with
                | Ok () -> ()
                | Error _ -> ());
                let _ = process_pending backend in
                match Ring.pop_response conn.ring with
                | Some slot when slot.Ring.id = id -> Proto.decode_response slot.Ring.payload
                | Some _ -> Error "response id mismatch"
                | None -> Error "no response (backend stalled)")))
  end

(* A [Vtpm_tpm.Client.transport] over the split driver: raises on protocol
   failures, surfaces monitor denials as a distinguished exception so
   callers can tell "denied" from "TPM error". *)
exception Denied of string

let client_transport (backend : backend) (conn : connection) : Vtpm_tpm.Client.transport =
 fun wire ->
  match request backend conn ~wire with
  | Ok (Proto.Ok_routed, payload) -> payload
  | Ok (Proto.Denied, reason) -> raise (Denied reason)
  | Ok (Proto.Bad_frame, m) -> failwith ("bad frame: " ^ m)
  | Error m -> failwith m
