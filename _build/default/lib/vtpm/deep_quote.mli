(** Deep quote: link a guest's vTPM attestation to the hardware root of
    trust.

    A vTPM quote alone proves nothing about the platform — the vTPM is
    software. The deep quote chains two signatures: the guest's vTPM signs
    its PCR composite over the verifier's nonce; the hardware TPM signs
    the manager's PCR composite over [SHA1(vTPM signature)], binding the
    first quote to this physical platform and measured manager build. *)

type t = {
  vtpm_composite : string;
  vtpm_signature : string;
  vtpm_pubkey : Vtpm_crypto.Rsa.public;
  hw_composite : string;
  hw_signature : string;
  hw_pubkey : Vtpm_crypto.Rsa.public;
}

val hw_pcr_sel : Vtpm_tpm.Types.Pcr_selection.t
(** The hardware PCRs covered: the manager measurement register. *)

val make_hw_aik : Manager.t -> (int * string, string) result
(** Create and load a hardware attestation key under the SRK; returns
    [(handle, usage secret)]. *)

val produce : Manager.t -> vtpm_quote:string * string * Vtpm_crypto.Rsa.public -> (t, string) result
(** Wrap a guest-obtained vTPM quote [(composite, signature, pubkey)] in a
    hardware quote. The guest quote is supplied by the caller, so a deep
    quote cannot bypass the monitor. *)

val verify : t -> nonce:string -> bool
(** Verifier side: checks both signatures and the linkage against the
    original challenge [nonce]. *)
