(** vTPM instance state at rest: plaintext vs sealed.

    Baseline (2006 design): raw engine serialization, protected only by
    dom0 file permissions — the dump attack parses it directly.

    Improved: a fresh symmetric key encrypts the state; the key is sealed
    by the *hardware* TPM under its SRK, bound to the manager's
    measurement PCR. A stolen state file is useless off-platform, and
    on-platform after manager tampering. *)

type format = Plain | Sealed

val format_name : format -> string

val save : Manager.t -> Manager.instance -> format:format -> (string, string) result

val detect_format : string -> format option

val load : Manager.t -> string -> (Vtpm_tpm.Engine.t * int option, string) result
(** Restore an engine from a saved blob; sealed blobs additionally return
    the embedded instance id. Fails off-platform or after a manager-PCR
    change. *)

val suspend : Manager.t -> Manager.instance -> format:format -> (string, string) result
(** {!save}, then mark the instance [Suspended]. *)

val resume : Manager.t -> Manager.instance -> string -> (unit, string) result
(** Replace the instance's engine from a blob and reactivate it. *)
