(* Subjects: who is asking.

   The 2006 vTPM manager had a single notion of requester — "whatever
   wrote the instance number into the frame". The improvement's first
   move is an explicit subject identity with two provenances:

   - [Guest d]: an unprivileged domain, identified by the hypervisor
     (ring/event-channel endpoint). Unforgeable from inside the guest.
   - [Dom0_process name]: a process in the control domain. The hypervisor
     cannot tell dom0 processes apart; the manager daemon authenticates
     local callers by a per-process credential (modelled as a registered
     token), so "some root tool in dom0" is no longer equivalent to "the
     vTPM manager". *)

type t = Guest of Vtpm_xen.Domain.domid | Dom0_process of string

let equal a b =
  match (a, b) with
  | Guest x, Guest y -> x = y
  | Dom0_process x, Dom0_process y -> String.equal x y
  | _ -> false

let pp ppf = function
  | Guest d -> Fmt.pf ppf "guest:%d" d
  | Dom0_process p -> Fmt.pf ppf "dom0:%s" p

let to_string s = Fmt.str "%a" pp s

(* Stable key for decision caching. *)
let cache_key = function Guest d -> (0, string_of_int d) | Dom0_process p -> (1, p)

(* Resolve the security label of a subject. Guests carry the label the
   toolstack assigned at build time; dom0 processes are labelled by
   convention "dom0:<process>". *)
let label ~(xen : Vtpm_xen.Hypervisor.t) = function
  | Dom0_process p -> "dom0:" ^ p
  | Guest d -> (
      match Vtpm_xen.Hypervisor.find_domain xen d with
      | Ok dom -> dom.Vtpm_xen.Domain.label
      | Error _ -> "invalid")

(* Registered credentials for dom0 processes: the manager daemon holds a
   token table; a caller proves its process identity by presenting the
   matching token. The baseline has no such table — any dom0 process is
   fully trusted. *)
module Credentials = struct
  type nonrec t = (string, string) Hashtbl.t (* process -> token digest *)

  let create () = Hashtbl.create 4

  let register t ~process ~token =
    Hashtbl.replace t process (Vtpm_crypto.Sha256.digest token)

  let verify t ~process ~token =
    match Hashtbl.find_opt t process with
    | None -> false
    | Some digest -> Vtpm_crypto.Hmac.equal_ct digest (Vtpm_crypto.Sha256.digest token)
end
