(** sHype-style Access Control Module: Chinese Wall and Simple Type
    Enforcement over security labels.

    Complements the per-command vTPM monitor at two coarse events: domain
    build (labels in a common conflict set must not run simultaneously)
    and device attach (frontend/backend labels must carry the client and
    server types of the channel). *)

type label = string

type t

val create :
  ?conflict_sets:(string * label list) list -> ?types_of:(label * string list) list -> unit -> t

val example_policy : unit -> t
(** The datacenter policy used by examples and tests: competing banks and
    telcos conflict; tenants carry [vtpm_client], dom0 [vtpm_server]. *)

val types_of : t -> label -> string list
val share_type : t -> label -> label -> bool
val conflicts_with : t -> label -> label list

type decision = Admitted | Rejected of string

val admit : t -> domid:Vtpm_xen.Domain.domid -> label:label -> decision
(** Chinese Wall admission; on [Admitted] the domain joins the running
    set. *)

val retire : t -> domid:Vtpm_xen.Domain.domid -> unit
(** Remove a destroyed domain from the running set, re-opening its wall. *)

val may_attach_vtpm : t -> frontend_label:label -> backend_label:label -> decision
(** STE client/server pairing: the frontend needs type [vtpm_client], the
    backend [vtpm_server]. *)

(** {1 Policy text form}

    {v
      conflict <name> = <label> <label> ...
      types <label> = <type> <type> ...
    v} *)

val parse : string -> (t, string) result
val to_string : t -> string
