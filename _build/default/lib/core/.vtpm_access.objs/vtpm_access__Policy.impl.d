lib/core/policy.ml: Array Buffer Command_class Fmt Lazy List Printf String Subject Vtpm_tpm Vtpm_xen
