lib/core/host.ml: Acm Baseline Binding Domain Hashtbl Hypervisor List Monitor Printf Result Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util Vtpm_xen Xenstore
