lib/core/binding.ml: Hashtbl Vtpm_util Vtpm_xen
