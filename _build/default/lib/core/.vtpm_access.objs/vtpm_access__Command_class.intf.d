lib/core/command_class.mli:
