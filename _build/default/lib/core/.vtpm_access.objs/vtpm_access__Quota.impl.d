lib/core/quota.ml: Float Hashtbl Subject Vtpm_util
