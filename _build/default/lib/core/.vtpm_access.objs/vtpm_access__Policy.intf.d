lib/core/policy.mli: Command_class Format Subject Vtpm_xen
