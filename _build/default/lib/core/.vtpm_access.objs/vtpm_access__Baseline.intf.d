lib/core/baseline.mli: Vtpm_mgr Vtpm_xen
