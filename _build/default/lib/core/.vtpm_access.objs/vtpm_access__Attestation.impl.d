lib/core/attestation.ml: Engine Eventlog Fmt Hashtbl List String Types Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util
