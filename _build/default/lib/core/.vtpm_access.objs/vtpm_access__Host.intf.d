lib/core/host.mli: Acm Baseline Hashtbl Monitor Policy Vtpm_mgr Vtpm_tpm Vtpm_util Vtpm_xen
