lib/core/anchor.mli: Audit Vtpm_mgr
