lib/core/baseline.ml: Hashtbl Result Vtpm_mgr Vtpm_util Vtpm_xen
