lib/core/monitor.mli: Audit Binding Hashtbl Policy Quota Subject Vtpm_crypto Vtpm_mgr Vtpm_xen
