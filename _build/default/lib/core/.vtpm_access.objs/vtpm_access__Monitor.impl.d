lib/core/monitor.ml: Audit Binding Domain Hashtbl Hypervisor Policy Printf Quota Result String Subject Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util Vtpm_xen Xenstore
