lib/core/subject.ml: Fmt Hashtbl String Vtpm_crypto Vtpm_xen
