lib/core/quota.mli: Subject Vtpm_util
