lib/core/binding.mli: Vtpm_util Vtpm_xen
