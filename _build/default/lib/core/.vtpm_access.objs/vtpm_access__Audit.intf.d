lib/core/audit.mli: Format Vtpm_util
