lib/core/acm.ml: Buffer List Option Printf String Vtpm_xen
