lib/core/subject.mli: Format Vtpm_xen
