lib/core/anchor.ml: Audit Fmt Printf Result Vtpm_crypto Vtpm_mgr Vtpm_tpm
