lib/core/command_class.ml: List String Types Vtpm_tpm
