lib/core/attestation.mli: Format Vtpm_crypto Vtpm_mgr Vtpm_tpm
