lib/core/audit.ml: Fmt List Option Printf String Vtpm_crypto Vtpm_util
