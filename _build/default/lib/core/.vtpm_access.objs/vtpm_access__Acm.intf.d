lib/core/acm.mli: Vtpm_xen
