(** Hash-chained audit log.

    Every monitor decision appends an entry whose hash covers the previous
    entry's hash, so truncation or in-place tampering of a dumped log is
    detectable given the latest head — which {!Anchor} can pin in
    hardware-TPM NV. *)

type entry = {
  seq : int;
  time_us : float;  (** simulated time of the decision *)
  subject : string;
  operation : string;  (** ordinal name or management op *)
  instance : int option;
  allowed : bool;
  reason : string;
  prev_hash : string;
  hash : string;
}

type t

val genesis : string
(** Chain anchor of an empty log. *)

val create : cost:Vtpm_util.Cost.t -> t

val append :
  t -> subject:string -> operation:string -> instance:int option -> allowed:bool -> reason:string ->
  unit

val length : t -> int

val head : t -> string
(** Hash of the newest entry ({!genesis} when empty). *)

val entries : t -> entry list
(** Oldest first. *)

val entries_newest_first : t -> entry list

val verify_chain : ?expected_head:string -> entry list -> (unit, int) result
(** Recompute the chain over an exported (oldest-first) list.
    [Error seq] marks the first bad link; [Error (-1)] means the chain is
    internally consistent but does not end at [expected_head] (truncated
    or stale). *)

(** {1 Export / import}

    A line-oriented on-disk form; {!verify_chain} applies to imported
    lists exactly as to live ones. *)

val export : t -> string
val import : string -> (entry list, string) result

val pp_entry : Format.formatter -> entry -> unit
