(** The baseline: the 2006-design manager front-end, reproduced faithfully
    so every experiment has a comparison point.

    Properties — each exploited by an attack in [Vtpm_attacks]:
    requests route by the *claimed* instance number; no per-command
    policy; any dom0 process may perform any management operation; state
    and migration streams are plaintext. *)

type t = { xen : Vtpm_xen.Hypervisor.t; mgr : Vtpm_mgr.Manager.t }

val create : xen:Vtpm_xen.Hypervisor.t -> mgr:Vtpm_mgr.Manager.t -> t

val router : t -> Vtpm_mgr.Driver.router
(** Instance-number routing, exactly as vtpm_managerd did. *)

(** {1 Management — no authentication, no policy}

    [process] is accepted and ignored. *)

val save_instance : t -> process:string -> vtpm_id:int -> (string, string) result
val restore_instance : t -> process:string -> blob:string -> (int, string) result
val migrate_out : t -> process:string -> vtpm_id:int -> (string, string) result
val migrate_in : t -> process:string -> stream:string -> (int, string) result
