(** Subjects: who is asking.

    The 2006 vTPM manager had one notion of requester — "whatever wrote
    the instance number into the frame". The improvement's first move is
    an explicit subject identity with two provenances: guests identified
    by the hypervisor (unforgeable), and dom0 processes authenticated by a
    registered credential (the hypervisor cannot tell them apart). *)

type t =
  | Guest of Vtpm_xen.Domain.domid  (** hypervisor-attested guest *)
  | Dom0_process of string  (** named process in the control domain *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val cache_key : t -> int * string
(** Stable key for decision caching. *)

val label : xen:Vtpm_xen.Hypervisor.t -> t -> string
(** Security label: the toolstack-assigned label for guests,
    ["dom0:<process>"] for dom0 processes, ["invalid"] for dead
    domains. *)

(** Registered credentials for dom0 processes. The baseline has no such
    table — any dom0 process is fully trusted, which Table 2's
    rogue-management row exploits. *)
module Credentials : sig
  type t

  val create : unit -> t
  val register : t -> process:string -> token:string -> unit

  val verify : t -> process:string -> token:string -> bool
  (** Constant-shape token comparison. *)
end
