(** The vTPM binding table: instance ↔ domain, established at build time.

    The 2006 manager resolved "which vTPM?" from the instance number in
    the frame, with the association kept in XenStore — both writable by
    any dom0 tool. This table is the improved design's authoritative
    association: it lives inside the manager, is keyed by the
    hypervisor-attested sender, and changes only through authorized
    management operations. Each binding also records the guest's kernel
    digest at bind time — the reference for [when measured] guards. *)

type binding = {
  vtpm_id : int;
  domid : Vtpm_xen.Domain.domid;
  reference_measurement : string;
  bound_at : float;
}

type t

val create : cost:Vtpm_util.Cost.t -> t

val bind :
  t -> vtpm_id:int -> domid:Vtpm_xen.Domain.domid -> reference_measurement:string ->
  (binding, Vtpm_util.Verror.t) result
(** Fails with [Conflict] when either side is already bound. *)

val unbind : t -> domid:Vtpm_xen.Domain.domid -> unit

val lookup_domid : t -> Vtpm_xen.Domain.domid -> binding option
val lookup_instance : t -> int -> binding option
val bindings : t -> binding list
