(* The vTPM binding table: instance <-> domain, established at build time.

   The 2006 manager resolved "which vTPM?" from the instance number in the
   request frame, and the toolstack kept the association in XenStore —
   both writable by any dom0 tool. The binding table is the improved
   design's authoritative association: it lives inside the manager
   process, is keyed by the hypervisor-attested sender domid, and changes
   only through authorized management operations.

   Each binding also records the guest's kernel digest at bind time as
   the reference measurement for `when measured` policy guards. *)

type binding = {
  vtpm_id : int;
  domid : Vtpm_xen.Domain.domid;
  reference_measurement : string; (* guest kernel digest at bind time *)
  bound_at : float;
}

type t = {
  by_domid : (Vtpm_xen.Domain.domid, binding) Hashtbl.t;
  by_instance : (int, binding) Hashtbl.t;
  cost : Vtpm_util.Cost.t;
}

let create ~cost = { by_domid = Hashtbl.create 16; by_instance = Hashtbl.create 16; cost }

let bind t ~vtpm_id ~domid ~reference_measurement : (binding, Vtpm_util.Verror.t) result =
  if Hashtbl.mem t.by_domid domid then
    Vtpm_util.Verror.conflict "domain %d already has a vTPM binding" domid
  else if Hashtbl.mem t.by_instance vtpm_id then
    Vtpm_util.Verror.conflict "vTPM %d already bound" vtpm_id
  else begin
    let b = { vtpm_id; domid; reference_measurement; bound_at = Vtpm_util.Cost.now t.cost } in
    Hashtbl.replace t.by_domid domid b;
    Hashtbl.replace t.by_instance vtpm_id b;
    Ok b
  end

let unbind t ~domid =
  match Hashtbl.find_opt t.by_domid domid with
  | None -> ()
  | Some b ->
      Hashtbl.remove t.by_domid domid;
      Hashtbl.remove t.by_instance b.vtpm_id

let lookup_domid t domid = Hashtbl.find_opt t.by_domid domid
let lookup_instance t vtpm_id = Hashtbl.find_opt t.by_instance vtpm_id
let bindings t = Hashtbl.fold (fun _ b acc -> b :: acc) t.by_domid []
