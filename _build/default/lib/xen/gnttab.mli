(** Grant tables: page sharing with explicit, revocable permission.

    A domain grants a *specific* foreign domain access to one of its
    frames; the hypervisor enforces that only the named grantee maps it —
    a third domain holding a guessed reference gets nothing. *)

type gref = int

type access = Read_only | Read_write

type t

val create : unit -> t

val grant_access : t -> owner:Domain.domid -> grantee:Domain.domid -> frame:int -> access:access -> gref

val map : t -> caller:Domain.domid -> owner:Domain.domid -> gref:gref -> (int * access, string) result
(** Map a foreign frame; the caller must be the named grantee. Returns the
    frame number in the owner's space. *)

val unmap : t -> caller:Domain.domid -> owner:Domain.domid -> gref:gref -> unit

val revoke : t -> owner:Domain.domid -> gref:gref -> (unit, string) result
(** End a grant; fails while the grantee still has it mapped (as real
    gnttab end-foreign-access must wait). *)

val revoke_all_for : t -> Domain.domid -> unit
