(* Grant tables: page sharing with explicit, revocable permission.

   A domain grants a specific foreign domain access to one of its frames;
   the grantee maps it by (granter, gref). The hypervisor enforces that
   only the named grantee maps the grant — a third domain holding a
   guessed gref gets nothing, which the unauthorized-mapping attack test
   verifies. *)

type gref = int

type access = Read_only | Read_write

type grant = {
  gref : gref;
  owner : Domain.domid;
  grantee : Domain.domid;
  frame : int;
  access : access;
  mutable in_use : bool; (* currently mapped by grantee *)
  mutable revoked : bool;
}

type t = { grants : (Domain.domid * gref, grant) Hashtbl.t; next_ref : (Domain.domid, int) Hashtbl.t }

let create () = { grants = Hashtbl.create 32; next_ref = Hashtbl.create 8 }

let grant_access t ~owner ~grantee ~frame ~access : gref =
  let r = Option.value ~default:1 (Hashtbl.find_opt t.next_ref owner) in
  Hashtbl.replace t.next_ref owner (r + 1);
  Hashtbl.replace t.grants (owner, r)
    { gref = r; owner; grantee; frame; access; in_use = false; revoked = false };
  r

(* Map a foreign frame: the caller must be the named grantee. Returns the
   frame number in the owner's space (the simulation reads/writes through
   the owner's page table). *)
let map t ~caller ~owner ~gref : (int * access, string) result =
  match Hashtbl.find_opt t.grants (owner, gref) with
  | None -> Error (Printf.sprintf "no grant %d from domain %d" gref owner)
  | Some g ->
      if g.revoked then Error "grant revoked"
      else if g.grantee <> caller then
        Error (Printf.sprintf "grant %d from domain %d is for domain %d, not %d" gref owner g.grantee caller)
      else begin
        g.in_use <- true;
        Ok (g.frame, g.access)
      end

let unmap t ~caller ~owner ~gref =
  match Hashtbl.find_opt t.grants (owner, gref) with
  | Some g when g.grantee = caller -> g.in_use <- false
  | _ -> ()

(* End a grant; fails while the grantee still has it mapped, as on real
   Xen where gnttab_end_foreign_access must wait. *)
let revoke t ~owner ~gref : (unit, string) result =
  match Hashtbl.find_opt t.grants (owner, gref) with
  | None -> Error "no such grant"
  | Some g ->
      if g.in_use then Error "grant still mapped by grantee"
      else begin
        g.revoked <- true;
        Ok ()
      end

let revoke_all_for t domid =
  Hashtbl.iter (fun _ g -> if g.owner = domid || g.grantee = domid then g.revoked <- true) t.grants
