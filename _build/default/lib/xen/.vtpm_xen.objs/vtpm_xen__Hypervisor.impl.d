lib/xen/hypervisor.ml: Domain Evtchn Gnttab Hashtbl List Printf Stdlib Vtpm_util Xenstore
