lib/xen/xenstore.mli: Domain Hashtbl
