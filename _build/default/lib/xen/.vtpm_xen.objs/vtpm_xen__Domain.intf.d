lib/xen/domain.mli: Bytes Hashtbl
