lib/xen/hypervisor.mli: Domain Evtchn Gnttab Hashtbl Vtpm_util Xenstore
