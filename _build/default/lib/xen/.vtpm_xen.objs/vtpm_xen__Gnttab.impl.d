lib/xen/gnttab.ml: Domain Hashtbl Option Printf
