lib/xen/sched.mli: Domain
