lib/xen/ring.ml: Domain Queue
