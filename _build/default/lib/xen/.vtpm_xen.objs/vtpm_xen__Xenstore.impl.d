lib/xen/xenstore.ml: Domain Hashtbl List Stdlib String
