lib/xen/domain.ml: Bytes Hashtbl List Printf Stdlib String Vtpm_crypto
