lib/xen/gnttab.mli: Domain
