lib/xen/evtchn.mli: Domain
