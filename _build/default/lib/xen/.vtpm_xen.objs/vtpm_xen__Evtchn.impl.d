lib/xen/evtchn.ml: Domain Hashtbl Option Printf
