lib/xen/ring.mli: Domain
