lib/xen/sched.ml: Domain Float List Option
