(** XenStore: the hierarchical configuration store shared by toolstack,
    backends and guests, modelled on oxenstored.

    Per-node permissions follow xenstored: an owner with full access, a
    default permission for everyone else, per-domain ACL overrides.
    Privileged callers (dom0) bypass all checks — faithfully reproducing
    the weakness the paper's improvement works around: any dom0 tool can
    rewrite the frontend/backend wiring of a vTPM. *)

type perm = Pnone | Pread | Pwrite | Prdwr

val perm_allows_read : perm -> bool
val perm_allows_write : perm -> bool
val perm_of_char : char -> perm option
val perm_to_char : perm -> char

type node = {
  mutable value : string;
  children : (string, node) Hashtbl.t;
  mutable owner : Domain.domid;
  mutable others : perm;
  mutable acl : (Domain.domid * perm) list;
}

type t = {
  root : node;
  mutable generation : int;
  mutable watches : watch list;
  is_privileged : Domain.domid -> bool;
}

and watch = { token : string; path : string list; callback : string -> unit }

val create : ?is_privileged:(Domain.domid -> bool) -> unit -> t
(** [is_privileged] defaults to [(=) 0]; the hypervisor installs its live
    domain table. *)

val split_path : string -> string list
val join_path : string list -> string

type error = Eacces | Enoent | Eexist | Einval | Eagain

val error_name : error -> string

(** {1 Operations}

    All take the acting domain as [~caller] and enforce node permissions
    (modulo the dom0 bypass). *)

val read : t -> caller:Domain.domid -> string -> (string, error) result
val directory : t -> caller:Domain.domid -> string -> (string list, error) result

val write : t -> caller:Domain.domid -> string -> string -> (unit, error) result
(** Creates intermediate nodes (mkdir-on-write); created nodes are owned
    by the caller and inherit the parent's default permission and ACL. *)

val mkdir : t -> caller:Domain.domid -> string -> (unit, error) result
val rm : t -> caller:Domain.domid -> string -> (unit, error) result

val get_perms :
  t -> caller:Domain.domid -> string -> (Domain.domid * perm * (Domain.domid * perm) list, error) result

val set_perms :
  t ->
  caller:Domain.domid ->
  string ->
  owner:Domain.domid ->
  others:perm ->
  acl:(Domain.domid * perm) list ->
  (unit, error) result
(** Only the node owner or dom0 may change permissions. *)

(** {1 Watches}

    Fire on any mutation at or below the watched path. *)

val watch : t -> token:string -> path:string -> (string -> unit) -> unit
val unwatch : t -> token:string -> unit

(** {1 Transactions}

    Optimistic: writes are buffered; commit fails with [Eagain] if the
    store generation moved underneath (the caller retries, as real
    xenstore clients do). *)

type transaction

val tx_begin : t -> caller:Domain.domid -> transaction
val tx_write : transaction -> string -> string -> unit
val tx_rm : transaction -> string -> unit
val tx_commit : t -> transaction -> (unit, error) result
