(* XenStore: the hierarchical configuration store shared by toolstack,
   backends and guests, modelled on oxenstored.

   Per-node permissions follow xenstored's model: each node has an owner
   (full access), a default permission for everyone else, and per-domain
   ACL overrides. Privileged callers (dom0) bypass all checks — faithfully
   reproducing the weakness the paper's improvement works around: any
   dom0-resident tool can rewrite the frontend/backend wiring of a vTPM.

   Watches fire on any mutation at or below the watched path. Transactions
   are optimistic: operations are buffered and the commit fails if the
   store generation moved underneath. *)

type perm = Pnone | Pread | Pwrite | Prdwr

let perm_allows_read = function Pread | Prdwr -> true | Pnone | Pwrite -> false
let perm_allows_write = function Pwrite | Prdwr -> true | Pnone | Pread -> false

let perm_of_char = function
  | 'n' -> Some Pnone
  | 'r' -> Some Pread
  | 'w' -> Some Pwrite
  | 'b' -> Some Prdwr
  | _ -> None

let perm_to_char = function Pnone -> 'n' | Pread -> 'r' | Pwrite -> 'w' | Prdwr -> 'b'

type node = {
  mutable value : string;
  children : (string, node) Hashtbl.t;
  mutable owner : Domain.domid;
  mutable others : perm;
  mutable acl : (Domain.domid * perm) list;
}

type watch = { token : string; path : string list; callback : string -> unit }

type t = {
  root : node;
  mutable generation : int;
  mutable watches : watch list;
  is_privileged : Domain.domid -> bool;
}

let make_node ?(acl = []) ~owner ~others () =
  { value = ""; children = Hashtbl.create 4; owner; others; acl }

let create ?(is_privileged = fun d -> d = 0) () =
  { root = make_node ~owner:0 ~others:Pread (); generation = 0; watches = []; is_privileged }

(* Paths are '/'-separated; internally lists of components. *)
let split_path (p : string) : string list =
  List.filter (fun s -> s <> "") (String.split_on_char '/' p)

let join_path comps = "/" ^ String.concat "/" comps

let rec find_node node = function
  | [] -> Some node
  | c :: rest -> (
      match Hashtbl.find_opt node.children c with
      | None -> None
      | Some child -> find_node child rest)

let node_perm_for node domid =
  if domid = node.owner then Prdwr
  else match List.assoc_opt domid node.acl with Some p -> p | None -> node.others

let can_read t ~caller node = t.is_privileged caller || perm_allows_read (node_perm_for node caller)

let can_write t ~caller node =
  t.is_privileged caller || perm_allows_write (node_perm_for node caller)

let fire_watches t (path : string list) =
  let rec is_prefix pre full =
    match (pre, full) with
    | [], _ -> true
    | p :: pre', f :: full' -> p = f && is_prefix pre' full'
    | _ :: _, [] -> false
  in
  let path_str = join_path path in
  List.iter (fun w -> if is_prefix w.path path then w.callback path_str) t.watches

type error = Eacces | Enoent | Eexist | Einval | Eagain

let error_name = function
  | Eacces -> "EACCES"
  | Enoent -> "ENOENT"
  | Eexist -> "EEXIST"
  | Einval -> "EINVAL"
  | Eagain -> "EAGAIN"

(* --- Core operations (non-transactional) ---------------------------------- *)

let read t ~caller path : (string, error) result =
  match find_node t.root (split_path path) with
  | None -> Error Enoent
  | Some n -> if can_read t ~caller n then Ok n.value else Error Eacces

let directory t ~caller path : (string list, error) result =
  match find_node t.root (split_path path) with
  | None -> Error Enoent
  | Some n ->
      if can_read t ~caller n then
        Ok (List.sort Stdlib.compare (Hashtbl.fold (fun k _ acc -> k :: acc) n.children []))
      else Error Eacces

(* Write creates intermediate nodes (xenstored mkdir-on-write semantics);
   created nodes are owned by the caller and inherit the parent's default
   permission. *)
let write t ~caller path value : (unit, error) result =
  let comps = split_path path in
  if comps = [] then Error Einval
  else begin
    let rec descend node = function
      | [] ->
          if can_write t ~caller node then begin
            node.value <- value;
            Ok ()
          end
          else Error Eacces
      | c :: rest -> (
          match Hashtbl.find_opt node.children c with
          | Some child -> descend child rest
          | None ->
              if not (can_write t ~caller node) then Error Eacces
              else begin
                (* Children inherit the parent's default permission and
                   ACL, as toolstacks rely on when pre-chmodding a dir. *)
                let child = make_node ~acl:node.acl ~owner:caller ~others:node.others () in
                Hashtbl.replace node.children c child;
                descend child rest
              end)
    in
    match descend t.root comps with
    | Ok () ->
        t.generation <- t.generation + 1;
        fire_watches t comps;
        Ok ()
    | Error e -> Error e
  end

let mkdir t ~caller path : (unit, error) result =
  match find_node t.root (split_path path) with
  | Some _ -> Ok () (* mkdir on existing node is a no-op *)
  | None -> write t ~caller path ""

let rm t ~caller path : (unit, error) result =
  let comps = split_path path in
  match List.rev comps with
  | [] -> Error Einval
  | leaf :: rev_parent -> (
      let parent_path = List.rev rev_parent in
      match find_node t.root parent_path with
      | None -> Error Enoent
      | Some parent -> (
          match Hashtbl.find_opt parent.children leaf with
          | None -> Error Enoent
          | Some node ->
              if can_write t ~caller node || can_write t ~caller parent then begin
                Hashtbl.remove parent.children leaf;
                t.generation <- t.generation + 1;
                fire_watches t comps;
                Ok ()
              end
              else Error Eacces))

let get_perms t ~caller path : (Domain.domid * perm * (Domain.domid * perm) list, error) result =
  match find_node t.root (split_path path) with
  | None -> Error Enoent
  | Some n -> if can_read t ~caller n then Ok (n.owner, n.others, n.acl) else Error Eacces

(* Only the node owner (or dom0) may change permissions. *)
let set_perms t ~caller path ~owner ~others ~acl : (unit, error) result =
  match find_node t.root (split_path path) with
  | None -> Error Enoent
  | Some n ->
      if t.is_privileged caller || caller = n.owner then begin
        n.owner <- owner;
        n.others <- others;
        n.acl <- acl;
        t.generation <- t.generation + 1;
        Ok ()
      end
      else Error Eacces

(* --- Watches ---------------------------------------------------------------- *)

let watch t ~token ~path callback =
  t.watches <- { token; path = split_path path; callback } :: t.watches

let unwatch t ~token = t.watches <- List.filter (fun w -> w.token <> token) t.watches

(* --- Transactions ------------------------------------------------------------

   Optimistic: reads go straight to the store, writes are buffered;
   commit re-checks the generation and applies atomically or fails with
   EAGAIN (the caller retries, as real xenstore clients do). *)

type tx_op = Tx_write of string * string | Tx_rm of string

type transaction = { started_gen : int; mutable ops : tx_op list; caller : Domain.domid }

let tx_begin t ~caller = { started_gen = t.generation; ops = []; caller }
let tx_write tx path value = tx.ops <- Tx_write (path, value) :: tx.ops
let tx_rm tx path = tx.ops <- Tx_rm path :: tx.ops

let tx_commit t (tx : transaction) : (unit, error) result =
  if t.generation <> tx.started_gen then Error Eagain
  else begin
    let rec apply = function
      | [] -> Ok ()
      | Tx_write (p, v) :: rest -> (
          match write t ~caller:tx.caller p v with Ok () -> apply rest | Error e -> Error e)
      | Tx_rm p :: rest -> (
          match rm t ~caller:tx.caller p with Ok () -> apply rest | Error e -> Error e)
    in
    apply (List.rev tx.ops)
  end
