(** Domains (virtual machines) as the hypervisor sees them.

    A domain owns simulated memory pages — real byte arrays, because the
    memory-dump attack the paper motivates is literally "a privileged tool
    reads another domain's pages", and the experiments need real bytes to
    leak or protect. *)

type domid = int

type state =
  | Building  (** under construction by the toolstack *)
  | Running
  | Paused
  | Shutdown of string  (** reason *)
  | Dying  (** teardown in progress *)
  | Dead

val state_name : state -> string

val page_size : int
(** 4096 bytes. *)

type t = {
  id : domid;
  name : string;
  mutable state : state;
  privileged : bool;  (** dom0 *)
  label : string;  (** security label used by the access-control layer *)
  pages : (int, Bytes.t) Hashtbl.t;
  max_pages : int;
  mutable kernel_digest : string;  (** SHA-1 of the booted kernel image *)
}

val create : id:domid -> name:string -> privileged:bool -> label:string -> max_pages:int -> t

val is_alive : t -> bool
val can_run : t -> bool

val transition : t -> state -> (unit, string) result
(** Lifecycle step; invalid transitions are reported, not silently eaten,
    so toolstack bugs surface in tests. *)

(** {1 Memory}

    Pages allocate lazily on first write; reads of unallocated pages
    return zeros, like ballooned-out memory. *)

val write_memory : t -> frame:int -> offset:int -> string -> (unit, string) result
val read_memory : t -> frame:int -> offset:int -> length:int -> (string, string) result

val scan_memory : t -> pattern:string -> (int * int) list
(** All [(frame, offset)] occurrences of [pattern] — what a memory-dump
    tool does when it greps a core image for key material. *)

val set_kernel : t -> image:string -> unit
(** Record the booted kernel; measured-boot policies compare its digest. *)
