(* Domains (virtual machines) as the hypervisor sees them.

   A domain owns simulated memory pages — plain byte arrays, because the
   memory-dump attack the paper motivates is literally "a privileged tool
   reads another domain's pages", and the experiments need real bytes to
   leak or protect. *)

type domid = int

type state =
  | Building (* being constructed by the toolstack *)
  | Running
  | Paused
  | Shutdown of string (* reason *)
  | Dying (* teardown in progress *)
  | Dead

let state_name = function
  | Building -> "building"
  | Running -> "running"
  | Paused -> "paused"
  | Shutdown r -> "shutdown:" ^ r
  | Dying -> "dying"
  | Dead -> "dead"

let page_size = 4096

type t = {
  id : domid;
  name : string;
  mutable state : state;
  privileged : bool; (* dom0 *)
  label : string; (* security label used by the access-control layer *)
  pages : (int, Bytes.t) Hashtbl.t; (* pseudo-physical frame -> contents *)
  max_pages : int;
  mutable kernel_digest : string; (* SHA-1 of the booted kernel image *)
}

let create ~id ~name ~privileged ~label ~max_pages =
  {
    id;
    name;
    state = Building;
    privileged;
    label;
    pages = Hashtbl.create 32;
    max_pages;
    kernel_digest = String.make 20 '\x00';
  }

let is_alive t = match t.state with Dead -> false | _ -> true
let can_run t = t.state = Running

(* Lifecycle transitions; invalid ones are reported, not silently eaten,
   so toolstack bugs surface in tests. *)
let transition t (target : state) : (unit, string) result =
  let ok () =
    t.state <- target;
    Ok ()
  in
  match (t.state, target) with
  | Building, Running -> ok ()
  | Running, Paused | Paused, Running -> ok ()
  | Running, Shutdown _ | Paused, Shutdown _ -> ok ()
  | (Building | Running | Paused | Shutdown _), Dying -> ok ()
  | Dying, Dead -> ok ()
  | from, target ->
      Error
        (Printf.sprintf "domain %d: invalid transition %s -> %s" t.id (state_name from)
           (state_name target))

(* --- Memory ----------------------------------------------------------------

   Pages are allocated lazily on first write. Reads of unallocated pages
   return zeros, like real ballooned-out memory. *)

let get_page t frame =
  match Hashtbl.find_opt t.pages frame with
  | Some p -> Some p
  | None ->
      if frame < 0 || frame >= t.max_pages then None
      else begin
        let p = Bytes.make page_size '\x00' in
        Hashtbl.replace t.pages frame p;
        Some p
      end

let write_memory t ~frame ~offset (data : string) : (unit, string) result =
  if offset < 0 || offset + String.length data > page_size then Error "write beyond page"
  else
    match get_page t frame with
    | None -> Error (Printf.sprintf "frame %d out of range" frame)
    | Some p ->
        Bytes.blit_string data 0 p offset (String.length data);
        Ok ()

let read_memory t ~frame ~offset ~length : (string, string) result =
  if offset < 0 || length < 0 || offset + length > page_size then Error "read beyond page"
  else
    match get_page t frame with
    | None -> Error (Printf.sprintf "frame %d out of range" frame)
    | Some p -> Ok (Bytes.sub_string p offset length)

(* Scan all allocated pages for a byte pattern — what a memory-dump tool
   does when it greps a core image for key material. *)
let scan_memory t ~pattern : (int * int) list =
  let hits = ref [] in
  let plen = String.length pattern in
  if plen > 0 then
    Hashtbl.iter
      (fun frame page ->
        let limit = Bytes.length page - plen in
        let i = ref 0 in
        while !i <= limit do
          if Bytes.sub_string page !i plen = pattern then begin
            hits := (frame, !i) :: !hits;
            i := !i + plen
          end
          else incr i
        done)
      t.pages;
  List.sort Stdlib.compare !hits

(* Record the kernel the domain booted; the measured-boot example extends
   this digest into the vTPM and the measurement-gated policy checks it. *)
let set_kernel t ~image = t.kernel_digest <- Vtpm_crypto.Sha1.digest image
