lib/attacks/attack.mli: Format Vtpm_access
