lib/attacks/attack.ml: Domain Fmt Host Hypervisor Lazy List Monitor Policy Printf Ring String Vtpm_access Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util Vtpm_xen Xenstore
