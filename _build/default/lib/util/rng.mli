(** Deterministic pseudo-random number generator (splitmix64).

    Every stochastic component of the simulation draws from an explicit
    [Rng.t] so experiments reproduce exactly for a given seed. Not a
    cryptographic generator — TPM-grade randomness comes from
    {!Vtpm_crypto.Drbg}. *)

type t = { mutable state : int64 }
(** Generator state; exposed so TPM state serialization can persist it. *)

val create : seed:int -> t
val copy : t -> t

val next_int64 : t -> int64
(** The raw 64-bit output stream. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [\[0, 1)], 53 bits of precision. *)

val bytes : t -> int -> string

val choose : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value (inter-arrival times in the workload
    generator). *)
