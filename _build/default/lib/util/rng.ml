(* Deterministic pseudo-random number generator (splitmix64).

   Every stochastic component in the simulation draws from an explicit
   [Rng.t] so that experiments are reproducible run-to-run: the same seed
   yields the same domain creation order, workload mix and attack timing. *)

type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound), bound > 0. Uses the top bits which have better
   statistical quality for splitmix64. *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t =
  (* 53 random bits scaled to [0,1). *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int v /. 9007199254740992.0

let bytes t n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (int t 256))
  done;
  Bytes.unsafe_to_string out

(* Pick a uniformly random element of a non-empty array. *)
let choose t arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t n)

(* Exponentially distributed value with the given mean (for inter-arrival
   times in the workload generator). *)
let exponential t ~mean =
  let u = float t in
  let u = if u <= 0.0 then epsilon_float else u in
  -.mean *. log u
