lib/util/codec.mli:
