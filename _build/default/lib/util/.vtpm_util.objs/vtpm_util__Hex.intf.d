lib/util/hex.mli:
