lib/util/verror.mli: Format Stdlib
