lib/util/verror.ml: Fmt Printf Result Stdlib
