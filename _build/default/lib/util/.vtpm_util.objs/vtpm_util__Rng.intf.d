lib/util/rng.mli:
