lib/util/cost.ml:
