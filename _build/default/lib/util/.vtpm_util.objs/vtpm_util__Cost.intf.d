lib/util/cost.mli:
