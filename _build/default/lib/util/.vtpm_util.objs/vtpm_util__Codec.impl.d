lib/util/codec.ml: Buffer Char Int32 Int64 Printf String
