(** Hexadecimal encoding and decoding of byte strings. *)

val encode : string -> string
(** [encode s] is the lowercase hexadecimal rendering of [s], two output
    characters per input byte. *)

val decode : string -> string
(** [decode h] inverts {!encode}, accepting upper- and lowercase digits.

    @raise Invalid_argument on odd length or non-hex characters. *)

val fingerprint : ?len:int -> string -> string
(** [fingerprint s] is a short hex prefix of [s] (default 8 characters),
    for log lines and audit records where full digests are noise. *)
