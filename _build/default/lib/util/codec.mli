(** Big-endian wire codec.

    The TPM 1.2 specification is big-endian throughout; this module is the
    byte-shovelling layer under the TPM command marshalling, the vTPM
    transport protocol and all state serialization. *)

exception Truncated of string
(** Raised by read functions when the input ends early; the payload names
    the field being read. *)

(** {1 Writing} *)

type writer
(** An append-only output buffer. *)

val writer : unit -> writer
val contents : writer -> string

val write_u8 : writer -> int -> unit
val write_u16 : writer -> int -> unit
val write_u32 : writer -> int32 -> unit

val write_u32_int : writer -> int -> unit
(** [write_u32_int w v] writes the low 32 bits of [v]. *)

val write_u64 : writer -> int64 -> unit
val write_bytes : writer -> string -> unit

val write_sized : writer -> string -> unit
(** Length-prefixed byte string: u32 size, then the payload. *)

(** {1 Reading} *)

type reader
(** A cursor over an immutable string. *)

val reader : string -> reader

val remaining : reader -> int
(** Bytes left before the end of input. *)

val eof : reader -> bool

val read_u8 : reader -> int
val read_u16 : reader -> int
val read_u32 : reader -> int32
val read_u32_int : reader -> int
val read_u64 : reader -> int64
val read_bytes : reader -> int -> string

val read_sized : reader -> string
(** Inverse of {!write_sized}. *)
