(* Big-endian wire codec used by the TPM 1.2 command marshalling and the
   vTPM transport. The TPM specification is big-endian throughout. *)

exception Truncated of string

(* Writer: an append-only buffer. *)
type writer = Buffer.t

let writer () : writer = Buffer.create 64
let contents (w : writer) = Buffer.contents w
let write_u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let write_u16 w v =
  write_u8 w (v lsr 8);
  write_u8 w v

let write_u32 w (v : int32) =
  let v = Int32.to_int v land 0xffffffff in
  write_u8 w (v lsr 24);
  write_u8 w (v lsr 16);
  write_u8 w (v lsr 8);
  write_u8 w v

let write_u32_int w v = write_u32 w (Int32.of_int v)

let write_u64 w (v : int64) =
  write_u32 w (Int64.to_int32 (Int64.shift_right_logical v 32));
  write_u32 w (Int64.to_int32 v)

let write_bytes w s = Buffer.add_string w s

(* A length-prefixed byte string: u32 size then payload. *)
let write_sized w s =
  write_u32_int w (String.length s);
  write_bytes w s

(* Reader: a cursor over an immutable string. *)
type reader = { src : string; mutable pos : int }

let reader src = { src; pos = 0 }
let remaining r = String.length r.src - r.pos
let eof r = remaining r = 0

let need r n what =
  if remaining r < n then
    raise (Truncated (Printf.sprintf "%s: need %d bytes, have %d" what n (remaining r)))

let read_u8 r =
  need r 1 "u8";
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_u16 r =
  need r 2 "u16";
  let hi = read_u8 r in
  let lo = read_u8 r in
  (hi lsl 8) lor lo

let read_u32 r : int32 =
  need r 4 "u32";
  let b0 = read_u8 r in
  let b1 = read_u8 r in
  let b2 = read_u8 r in
  let b3 = read_u8 r in
  Int32.logor
    (Int32.shift_left (Int32.of_int b0) 24)
    (Int32.of_int ((b1 lsl 16) lor (b2 lsl 8) lor b3))

let read_u32_int r = Int32.to_int (read_u32 r) land 0xffffffff

let read_u64 r : int64 =
  let hi = read_u32 r in
  let lo = read_u32 r in
  Int64.logor
    (Int64.shift_left (Int64.of_int32 hi) 32)
    (Int64.logand (Int64.of_int32 lo) 0xffffffffL)

let read_bytes r n =
  need r n "bytes";
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let read_sized r =
  let n = read_u32_int r in
  read_bytes r n
