(* XTEA block cipher (Needham–Wheeler) in counter mode.

   Used as the symmetric primitive for sealing vTPM state at rest: small,
   dependency-free and adequate for the simulation (the paper's system used
   the TPM's storage hierarchy + a platform symmetric cipher; any stream
   cipher preserves the behaviour under study — state dumps become useless
   without the sealed key). 64-bit block, 128-bit key, 64 rounds. *)

let rounds = 32
let delta = 0x9E3779B9l

type key = { k : int32 array } (* 4 words *)

let key_of_string (s : string) : key =
  if String.length s <> 16 then invalid_arg "Xtea.key_of_string: need 16 bytes";
  let word i =
    let b j = Int32.of_int (Char.code s.[(4 * i) + j]) in
    Int32.logor
      (Int32.shift_left (b 0) 24)
      (Int32.logor (Int32.shift_left (b 1) 16) (Int32.logor (Int32.shift_left (b 2) 8) (b 3)))
  in
  { k = [| word 0; word 1; word 2; word 3 |] }

let encrypt_block key (v0, v1) =
  let v0 = ref v0 and v1 = ref v1 and sum = ref 0l in
  for _ = 1 to rounds do
    let t =
      Int32.add
        (Int32.logxor
           (Int32.add (Int32.shift_left !v1 4) (Int32.shift_right_logical !v1 5))
           !v1)
        (Int32.add !sum key.k.(Int32.to_int (Int32.logand !sum 3l)))
    in
    v0 := Int32.add !v0 (Int32.logxor t 0l);
    sum := Int32.add !sum delta;
    let t2 =
      Int32.add
        (Int32.logxor
           (Int32.add (Int32.shift_left !v0 4) (Int32.shift_right_logical !v0 5))
           !v0)
        (Int32.add !sum key.k.(Int32.to_int (Int32.logand (Int32.shift_right_logical !sum 11) 3l)))
    in
    v1 := Int32.add !v1 t2
  done;
  (!v0, !v1)

(* Keystream block for counter [ctr]: ECB-encrypt the counter. *)
let keystream key ~nonce ~ctr =
  let v0 = Int32.of_int (nonce land 0xffffffff) in
  let v1 = Int32.of_int (ctr land 0xffffffff) in
  let c0, c1 = encrypt_block key (v0, v1) in
  let out = Bytes.create 8 in
  let put off (v : int32) =
    for j = 0 to 3 do
      Bytes.set out (off + j)
        (Char.chr (Int32.to_int (Int32.shift_right_logical v (8 * (3 - j))) land 0xff))
    done
  in
  put 0 c0;
  put 4 c1;
  Bytes.unsafe_to_string out

(* CTR mode: encryption and decryption are the same operation. *)
let ctr_transform key ~nonce (data : string) : string =
  let n = String.length data in
  let out = Bytes.create n in
  let i = ref 0 and ctr = ref 0 in
  while !i < n do
    let ks = keystream key ~nonce ~ctr:!ctr in
    let chunk = min 8 (n - !i) in
    for j = 0 to chunk - 1 do
      Bytes.set out (!i + j) (Char.chr (Char.code data.[!i + j] lxor Char.code ks.[j]))
    done;
    i := !i + 8;
    incr ctr
  done;
  Bytes.unsafe_to_string out
