(* Deterministic random bit generator in the style of Hash_DRBG
   (NIST SP 800-90A, simplified): state is a SHA-256 chaining value that is
   ratcheted on every generate call. The TPM engine's GetRandom and nonce
   generation draw from a per-instance DRBG so TPM outputs are reproducible
   for a given instance seed while remaining unpredictable without it. *)

type t = { mutable v : string; mutable reseed_counter : int }

let instantiate ~seed = { v = Sha256.digest ("drbg-init:" ^ seed); reseed_counter = 0 }

let reseed t ~entropy =
  t.v <- Sha256.digest ("drbg-reseed:" ^ t.v ^ entropy);
  t.reseed_counter <- 0

let generate t n =
  let out = Buffer.create n in
  let counter = ref 0 in
  while Buffer.length out < n do
    let block = Sha256.digest (Printf.sprintf "drbg-gen:%s:%d" t.v !counter) in
    Buffer.add_string out block;
    incr counter
  done;
  (* Ratchet forward so earlier outputs cannot be recomputed from state. *)
  t.v <- Sha256.digest ("drbg-update:" ^ t.v);
  t.reseed_counter <- t.reseed_counter + 1;
  String.sub (Buffer.contents out) 0 n

let generate_nonce t = generate t 20
