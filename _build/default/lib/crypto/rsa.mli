(** RSA over {!Bignum}, as the TPM 1.2 key hierarchy needs: storage keys
    wrap child-key blobs, signing keys produce quotes.

    Padding follows PKCS#1 v1.5 (block type 01 for signatures, 02 for
    encryption). Default modulus size is 512 bits so key generation and
    signing stay fast inside tests and benchmarks — the access-control
    monitor under study is agnostic to key size. Raw textbook
    exponentiation is never exposed. *)

type public = { n : Bignum.t; e : Bignum.t; bits : int }
type key = { pub : public; d : Bignum.t; p : Bignum.t; q : Bignum.t }

val default_e : Bignum.t
(** 65537. *)

val modulus_bytes : public -> int

val generate : ?bits:int -> Vtpm_util.Rng.t -> key
(** Fresh key with an exact [bits]-bit modulus (default 512).
    @raise Invalid_argument for odd or tiny sizes. *)

(** {1 Signatures} *)

val sign : key -> digest:string -> string
(** PKCS#1 v1.5 signature over [digest]; output is [modulus_bytes] wide. *)

val verify : public -> digest:string -> signature:string -> bool
(** Constant-shape comparison of the recovered encoding. *)

(** {1 Encryption} *)

val encrypt : Vtpm_util.Rng.t -> public -> string -> string
(** Probabilistic (random nonzero padding). *)

val decrypt : key -> string -> string option
(** [None] on wrong width, range or padding. *)

(** {1 Wire form} *)

val public_to_bytes : public -> string
val public_of_bytes : string -> public option

val fingerprint : public -> string
(** Stable SHA-1 of the wire form, used as key-handle material. *)

(** {1 Padding internals, exposed for tests} *)

val pad_signature : public -> string -> string
val pad_encrypt : Vtpm_util.Rng.t -> public -> string -> string
val unpad_encrypt : string -> string option
