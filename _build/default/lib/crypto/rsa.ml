(* RSA over [Bignum], as the TPM 1.2 key hierarchy needs: storage keys wrap
   child-key blobs, signing keys produce quotes. Padding follows the shape
   of PKCS#1 v1.5 (type 01 for signatures, type 02 for encryption); the
   security parameter defaults to 512-bit moduli so key generation and
   signing stay fast inside tests and benchmarks — the monitor under study
   is agnostic to key size.

   Raw textbook exponentiation is never exposed; all entry points pad. *)

type public = { n : Bignum.t; e : Bignum.t; bits : int }
type key = { pub : public; d : Bignum.t; p : Bignum.t; q : Bignum.t }

let default_e = Bignum.of_int 65537
let modulus_bytes pub = (pub.bits + 7) / 8

let generate ?(bits = 512) (rng : Vtpm_util.Rng.t) : key =
  if bits < 128 || bits mod 2 <> 0 then invalid_arg "Rsa.generate: bad modulus size";
  let half = bits / 2 in
  let rec attempt () =
    let p = Bignum.random_prime rng ~bits:half in
    let q = Bignum.random_prime rng ~bits:half in
    if Bignum.equal p q then attempt ()
    else begin
      let n = Bignum.mul p q in
      if Bignum.num_bits n <> bits then attempt ()
      else begin
        let phi = Bignum.mul (Bignum.sub p Bignum.one) (Bignum.sub q Bignum.one) in
        match Bignum.mod_inverse ~modulus:phi default_e with
        | None -> attempt ()
        | Some d -> { pub = { n; e = default_e; bits }; d; p; q }
      end
    end
  in
  attempt ()

(* --- PKCS#1 v1.5 style padding --------------------------------------- *)

let pad_signature pub digest =
  let k = modulus_bytes pub in
  let dl = String.length digest in
  if dl + 11 > k then invalid_arg "Rsa: digest too long for modulus";
  (* 00 01 FF..FF 00 digest *)
  "\x00\x01" ^ String.make (k - dl - 3) '\xff' ^ "\x00" ^ digest

let pad_encrypt rng pub msg =
  let k = modulus_bytes pub in
  let ml = String.length msg in
  if ml + 11 > k then invalid_arg "Rsa: message too long for modulus";
  let ps = Bytes.create (k - ml - 3) in
  for i = 0 to Bytes.length ps - 1 do
    (* nonzero random padding *)
    Bytes.set ps i (Char.chr (1 + Vtpm_util.Rng.int rng 255))
  done;
  "\x00\x02" ^ Bytes.unsafe_to_string ps ^ "\x00" ^ msg

let unpad_encrypt (s : string) =
  let k = String.length s in
  if k < 11 || s.[0] <> '\x00' || s.[1] <> '\x02' then None
  else begin
    match String.index_from_opt s 2 '\x00' with
    | Some sep when sep >= 10 -> Some (String.sub s (sep + 1) (k - sep - 1))
    | _ -> None
  end

(* --- Core operations --------------------------------------------------- *)

let sign (key : key) ~(digest : string) : string =
  let em = pad_signature key.pub digest in
  let m = Bignum.of_bytes_be em in
  let s = Bignum.mod_pow ~modulus:key.pub.n m key.d in
  Bignum.to_bytes_be_padded s ~width:(modulus_bytes key.pub)

let verify (pub : public) ~(digest : string) ~(signature : string) : bool =
  if String.length signature <> modulus_bytes pub then false
  else begin
    let s = Bignum.of_bytes_be signature in
    if Bignum.compare s pub.n >= 0 then false
    else begin
      let em = Bignum.mod_pow ~modulus:pub.n s pub.e in
      let expected = pad_signature pub digest in
      Hmac.equal_ct (Bignum.to_bytes_be_padded em ~width:(modulus_bytes pub)) expected
    end
  end

let encrypt rng (pub : public) (msg : string) : string =
  let em = pad_encrypt rng pub msg in
  let m = Bignum.of_bytes_be em in
  let c = Bignum.mod_pow ~modulus:pub.n m pub.e in
  Bignum.to_bytes_be_padded c ~width:(modulus_bytes pub)

let decrypt (key : key) (cipher : string) : string option =
  if String.length cipher <> modulus_bytes key.pub then None
  else begin
    let c = Bignum.of_bytes_be cipher in
    if Bignum.compare c key.pub.n >= 0 then None
    else begin
      let m = Bignum.mod_pow ~modulus:key.pub.n c key.d in
      unpad_encrypt (Bignum.to_bytes_be_padded m ~width:(modulus_bytes key.pub))
    end
  end

(* --- Wire form (for storing public keys in TPM key blobs) -------------- *)

let public_to_bytes (pub : public) : string =
  let w = Vtpm_util.Codec.writer () in
  Vtpm_util.Codec.write_u16 w pub.bits;
  Vtpm_util.Codec.write_sized w (Bignum.to_bytes_be pub.n);
  Vtpm_util.Codec.write_sized w (Bignum.to_bytes_be pub.e);
  Vtpm_util.Codec.contents w

let public_of_bytes (s : string) : public option =
  match
    let r = Vtpm_util.Codec.reader s in
    let bits = Vtpm_util.Codec.read_u16 r in
    let n = Bignum.of_bytes_be (Vtpm_util.Codec.read_sized r) in
    let e = Bignum.of_bytes_be (Vtpm_util.Codec.read_sized r) in
    { n; e; bits }
  with
  | pub -> Some pub
  | exception Vtpm_util.Codec.Truncated _ -> None

(* Stable fingerprint of a public key, used as key handle material. *)
let fingerprint (pub : public) : string = Sha1.digest (public_to_bytes pub)
