(** Deterministic random bit generator, Hash_DRBG style (simplified
    NIST SP 800-90A).

    The TPM engine's GetRandom and nonce generation draw from a
    per-instance DRBG: outputs are reproducible for a given instance seed
    while remaining unpredictable without it, and the state ratchets
    forward so past outputs cannot be recomputed from captured state. *)

type t = { mutable v : string; mutable reseed_counter : int }
(** Exposed so TPM state serialization can persist the chaining value. *)

val instantiate : seed:string -> t

val reseed : t -> entropy:string -> unit
(** Mix fresh entropy (TPM_StirRandom). *)

val generate : t -> int -> string
(** [generate t n] returns [n] bytes and ratchets the state. *)

val generate_nonce : t -> string
(** 20 bytes, the TPM 1.2 nonce size. *)
