lib/crypto/rsa.ml: Bignum Bytes Char Hmac Sha1 String Vtpm_util
