lib/crypto/sha1.ml: Array Buffer Bytes Char Int32 Int64 String Vtpm_util
