lib/crypto/bignum.ml: Array Bytes Char List Stdlib String Vtpm_util
