lib/crypto/xtea.mli:
