lib/crypto/bignum.mli: Vtpm_util
