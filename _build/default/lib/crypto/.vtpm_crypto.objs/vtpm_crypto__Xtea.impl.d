lib/crypto/xtea.ml: Array Bytes Char Int32 String
