lib/crypto/drbg.mli:
