lib/crypto/rsa.mli: Bignum Vtpm_util
