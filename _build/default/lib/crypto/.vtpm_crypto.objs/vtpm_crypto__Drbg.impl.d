lib/crypto/drbg.ml: Buffer Printf Sha256 String
