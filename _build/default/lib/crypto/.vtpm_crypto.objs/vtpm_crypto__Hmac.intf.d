lib/crypto/hmac.mli:
