(** XTEA block cipher (Needham–Wheeler) in counter mode.

    The symmetric primitive for sealing vTPM state at rest: small,
    dependency-free and adequate for the simulation — the behaviour under
    study is that state dumps become useless without the sealed key, which
    any stream cipher preserves. 64-bit block, 128-bit key. *)

type key

val key_of_string : string -> key
(** @raise Invalid_argument unless exactly 16 bytes. *)

val encrypt_block : key -> int32 * int32 -> int32 * int32
(** Raw 64-bit block encryption (exposed for tests). *)

val ctr_transform : key -> nonce:int -> string -> string
(** Counter-mode keystream XOR; encryption and decryption are the same
    operation. Never reuse a (key, nonce) pair for distinct messages. *)
