(** Plain-text table and series rendering shared by the bench harness and
    the examples. *)

val render : title:string -> header:string list -> rows:string list list -> string
(** Fixed-width table with a separator under the header. *)

val render_series :
  title:string -> x_label:string -> series:(string * (float * float) list) list -> string
(** A figure as a printed series: one x column, one column per series. All
    series must share x values. *)

val us_str : float -> string
val pct_str : float -> string
