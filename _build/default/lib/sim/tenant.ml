(* A tenant: a guest prepared for realistic vTPM use — owned vTPM, loaded
   signing key, a sealed secret — plus per-operation drivers that measure
   simulated latency. The workload generator composes these. *)

open Vtpm_access

type t = {
  guest : Host.guest;
  client : Vtpm_tpm.Client.t;
  srk_auth : string;
  owner_auth : string;
  sign_key : int; (* loaded signing key handle *)
  sign_key_auth : string;
  mutable sealed_blob : string;
  blob_auth : string;
  rng : Vtpm_util.Rng.t;
}

exception Setup_failed of string

let unwrap what = function
  | Ok v -> v
  | Error e -> raise (Setup_failed (Fmt.str "%s: %a" what Vtpm_tpm.Client.pp_error e))

(* Provision a fresh tenant on [host]. *)
let setup (host : Host.t) ~name ~label : t =
  let guest =
    match Host.create_guest host ~name ~label () with
    | Ok g -> g
    | Error e -> raise (Setup_failed ("create_guest: " ^ e))
  in
  let client = Host.guest_client host guest in
  let tag s = Vtpm_crypto.Sha1.digest (name ^ ":" ^ s) in
  let owner_auth = tag "owner" and srk_auth = tag "srk" in
  let _ = unwrap "measure" (Vtpm_tpm.Client.measure client ~pcr:10 ~event:(name ^ "-boot")) in
  let _ = unwrap "take_ownership" (Vtpm_tpm.Client.take_ownership client ~owner_auth ~srk_auth) in
  let sign_key_auth = tag "signkey" in
  let sess =
    unwrap "osap"
      (Vtpm_tpm.Client.start_osap client ~entity_handle:Vtpm_tpm.Types.kh_srk
         ~usage_secret:srk_auth)
  in
  let blob, _pub =
    unwrap "create_key"
      (Vtpm_tpm.Client.create_wrap_key client sess ~parent:Vtpm_tpm.Types.kh_srk
         ~usage:Vtpm_tpm.Types.Signing ~key_auth:sign_key_auth ())
  in
  let sign_key =
    unwrap "load_key"
      (Vtpm_tpm.Client.load_key2 ~continue:false client sess ~parent:Vtpm_tpm.Types.kh_srk ~blob)
  in
  let blob_auth = tag "blob" in
  let sess2 = unwrap "oiap" (Vtpm_tpm.Client.start_oiap client ~usage_secret:srk_auth) in
  let sealed_blob =
    unwrap "seal"
      (Vtpm_tpm.Client.seal ~continue:false client sess2 ~key:Vtpm_tpm.Types.kh_srk
         ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [])
         ~blob_auth ~data:(name ^ "-secret-material"))
  in
  {
    guest;
    client;
    srk_auth;
    owner_auth;
    sign_key;
    sign_key_auth;
    sealed_blob;
    blob_auth;
    rng = Vtpm_util.Rng.create ~seed:(guest.Host.domid * 31 + 17);
  }

(* --- Operations -------------------------------------------------------------

   Each op returns [Ok ()] or the failure; the driver measures the
   simulated time around the call. Denials surface as [Error]. *)

type op = Op_extend | Op_pcr_read | Op_random | Op_seal | Op_unseal | Op_quote | Op_sign

let op_name = function
  | Op_extend -> "extend"
  | Op_pcr_read -> "pcr_read"
  | Op_random -> "get_random"
  | Op_seal -> "seal"
  | Op_unseal -> "unseal"
  | Op_quote -> "quote"
  | Op_sign -> "sign"

let all_ops = [ Op_extend; Op_pcr_read; Op_random; Op_seal; Op_unseal; Op_quote; Op_sign ]

let run_op (t : t) (op : op) : (unit, string) result =
  let lift what r = Result.map_error (fun e -> Fmt.str "%s: %a" what Vtpm_tpm.Client.pp_error e) (Result.map ignore r) in
  match op with
  | Op_extend ->
      lift "extend"
        (Vtpm_tpm.Client.measure t.client ~pcr:(10 + Vtpm_util.Rng.int t.rng 4)
           ~event:(Printf.sprintf "event-%d" (Vtpm_util.Rng.int t.rng 1000)))
  | Op_pcr_read -> lift "pcr_read" (Vtpm_tpm.Client.pcr_read t.client ~pcr:(Vtpm_util.Rng.int t.rng 16))
  | Op_random -> lift "random" (Vtpm_tpm.Client.get_random t.client ~length:32)
  | Op_seal -> (
      match Vtpm_tpm.Client.start_oiap t.client ~usage_secret:t.srk_auth with
      | Error e -> Error (Fmt.str "oiap: %a" Vtpm_tpm.Client.pp_error e)
      | Ok sess -> (
          match
            Vtpm_tpm.Client.seal ~continue:false t.client sess ~key:Vtpm_tpm.Types.kh_srk
              ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [])
              ~blob_auth:t.blob_auth
              ~data:(Vtpm_util.Rng.bytes t.rng 64)
          with
          | Ok blob ->
              t.sealed_blob <- blob;
              Ok ()
          | Error e -> Error (Fmt.str "seal: %a" Vtpm_tpm.Client.pp_error e)))
  | Op_unseal -> (
      match
        ( Vtpm_tpm.Client.start_oiap t.client ~usage_secret:t.srk_auth,
          Vtpm_tpm.Client.start_oiap t.client ~usage_secret:t.blob_auth )
      with
      | Ok ks, Ok ds ->
          lift "unseal"
            (Vtpm_tpm.Client.unseal t.client ~key_session:ks ~data_session:ds
               ~key:Vtpm_tpm.Types.kh_srk ~blob:t.sealed_blob)
      | Error e, _ | _, Error e -> Error (Fmt.str "oiap: %a" Vtpm_tpm.Client.pp_error e))
  | Op_quote -> (
      match Vtpm_tpm.Client.start_oiap t.client ~usage_secret:t.sign_key_auth with
      | Error e -> Error (Fmt.str "oiap: %a" Vtpm_tpm.Client.pp_error e)
      | Ok sess ->
          lift "quote"
            (Vtpm_tpm.Client.quote ~continue:false t.client sess ~key:t.sign_key
               ~external_data:(Vtpm_util.Rng.bytes t.rng 20)
               ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [ 0; 10 ])))
  | Op_sign -> (
      match Vtpm_tpm.Client.start_oiap t.client ~usage_secret:t.sign_key_auth with
      | Error e -> Error (Fmt.str "oiap: %a" Vtpm_tpm.Client.pp_error e)
      | Ok sess ->
          lift "sign"
            (Vtpm_tpm.Client.sign ~continue:false t.client sess ~key:t.sign_key
               ~digest:(Vtpm_crypto.Sha1.digest (Vtpm_util.Rng.bytes t.rng 64))))
