(* Plain-text table and series rendering shared by the bench harness and
   the examples — the same fixed-width style the paper's tables would
   print. *)

let hr widths =
  String.concat "-+-" (List.map (fun w -> String.make w '-') widths)

let fmt_cell width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let render ~title ~header ~(rows : string list list) : string =
  let all = header :: rows in
  let ncols = List.length header in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
  in
  let line row = String.concat " | " (List.map2 fmt_cell widths row) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (hr widths ^ "\n");
  List.iter (fun row -> Buffer.add_string buf (line row ^ "\n")) rows;
  Buffer.contents buf

(* A figure as a printed series: x, one column per line. *)
let render_series ~title ~x_label ~(series : (string * (float * float) list) list) : string =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  let header = x_label :: List.map fst series in
  let xs =
    match series with
    | [] -> []
    | (_, pts) :: _ -> List.map fst pts
  in
  let rows =
    List.mapi
      (fun i x ->
        Printf.sprintf "%g" x
        :: List.map
             (fun (_, pts) ->
               match List.nth_opt pts i with
               | Some (_, y) -> Printf.sprintf "%.2f" y
               | None -> "-")
             series)
      xs
  in
  Buffer.add_string buf (render ~title:"" ~header ~rows);
  Buffer.contents buf

let us_str v = Printf.sprintf "%.1f" v
let pct_str v = Printf.sprintf "%+.1f%%" v
