(** A tenant: a guest provisioned for realistic vTPM use — owned vTPM,
    loaded signing key, a sealed secret — plus per-operation drivers. The
    workload generator composes these. *)

type t = {
  guest : Vtpm_access.Host.guest;
  client : Vtpm_tpm.Client.t;
  srk_auth : string;
  owner_auth : string;
  sign_key : int;
  sign_key_auth : string;
  mutable sealed_blob : string;
  blob_auth : string;
  rng : Vtpm_util.Rng.t;
}

exception Setup_failed of string

val setup : Vtpm_access.Host.t -> name:string -> label:string -> t
(** Provision a fresh tenant: create the guest, measure boot, take
    ownership, create+load a signing key, seal a secret.
    @raise Setup_failed when any step is denied or fails. *)

type op = Op_extend | Op_pcr_read | Op_random | Op_seal | Op_unseal | Op_quote | Op_sign

val op_name : op -> string
val all_ops : op list

val run_op : t -> op -> (unit, string) result
(** Execute one operation through the tenant's split-driver client,
    including any session setup it needs. Monitor denials surface as
    [Error] (or {!Vtpm_mgr.Driver.Denied} from the transport). *)
