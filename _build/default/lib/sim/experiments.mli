(** The reproduced evaluation: one function per table/figure (see
    DESIGN.md, "Reconstructed evaluation"). Each returns raw data plus a
    rendered text block; [bench/main.exe] prints them and EXPERIMENTS.md
    records them. Latencies are simulated microseconds — deterministic
    and machine-independent. *)

type table1_row = {
  op : Tenant.op;
  baseline_us : float;
  improved_us : float;
  overhead_pct : float;
}

val table1 : ?reps:int -> unit -> table1_row list * string
(** Per-command latency, baseline vs improved. *)

type table3_row = { operation : string; baseline_us : float; improved_us : float }

val inflate_state : Tenant.t -> kib:int -> unit
(** Grow a tenant's vTPM state by [kib] KiB of NV data (for the size
    sweeps). *)

val table3 : ?state_kib:int -> unit -> table3_row list * string
(** Lifecycle costs: create+attach, state save, state resume. *)

val fig1 :
  ?vm_counts:int list -> ?total_ops:int -> unit -> (string * (float * float) list) list * string
(** Aggregate throughput vs number of VMs. A constant total op count with
    a shared workload seed isolates per-VM effects from sampling noise. *)

val fig2 :
  ?rule_counts:int list -> ?reps:int -> unit -> (string * (float * float) list) list * string
(** Per-request latency vs policy size, decision cache on/off. *)

val fig3 : ?ops_per_tenant:int -> unit -> (string * Metrics.summary) list * string
(** Mixed-workload latency distribution, both modes. *)

val fig4 : ?state_kibs:int list -> unit -> (string * (float * float) list) list * string
(** Migration time vs state size, plaintext vs protected. *)

val fig5 : ?reps:int -> unit -> (string * float) list * string
(** Ablation: which monitor feature (cache, audit) costs what on a cheap
    command, against the no-monitor baseline. *)
