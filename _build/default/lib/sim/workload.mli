(** Workload generation: weighted operation mixes over tenants, measured
    in simulated time. *)

type mix = (Tenant.op * int) list
(** Operation, weight. *)

val attestation_heavy : mix
(** Remote-attestation service: frequent quotes. *)

val sealing_heavy : mix
(** Key-escrow / disk-key usage. *)

val mixed : mix
(** The default cloud-tenant mix. *)

val mix_name : mix -> string
val pick_op : Vtpm_util.Rng.t -> mix -> Tenant.op

type result = {
  per_op : (Tenant.op * Metrics.summary) list;
  overall : Metrics.summary;
  all_metrics : Metrics.t;
  ops_run : int;
  failures : int;
  elapsed_us : float;  (** simulated *)
  throughput_ops_s : float;  (** simulated ops/second *)
}

val run :
  Vtpm_access.Host.t -> tenants:Tenant.t list -> mix:mix -> ops_per_tenant:int -> ?seed:int ->
  unit -> result
(** Round-robin [ops_per_tenant] operations across [tenants], each drawn
    from [mix]; latency is the simulated time each op consumes. *)

val run_weighted :
  Vtpm_access.Host.t ->
  tenants:(Tenant.t * int) list ->
  mix:mix ->
  total_ops:int ->
  ?seed:int ->
  unit ->
  (Tenant.t * float) list
(** Tenants chosen by the Xen credit scheduler instead of round-robin:
    each tenant's vTPM service time follows its CPU weight. Returns
    per-tenant simulated service time. *)

val make_host_with_tenants :
  mode:Vtpm_access.Host.mode -> n:int -> ?seed:int -> unit -> Vtpm_access.Host.t * Tenant.t list
(** A host with [n] provisioned tenants. *)
