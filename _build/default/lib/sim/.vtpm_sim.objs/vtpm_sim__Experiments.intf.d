lib/sim/experiments.mli: Metrics Tenant
