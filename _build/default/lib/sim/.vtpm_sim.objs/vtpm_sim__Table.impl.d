lib/sim/table.ml: Buffer List Printf String
