lib/sim/table.mli:
