lib/sim/metrics.ml: Array Float Fmt List
