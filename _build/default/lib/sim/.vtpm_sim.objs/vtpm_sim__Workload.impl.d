lib/sim/workload.ml: Hashtbl Host List Metrics Option Printf Tenant Vtpm_access Vtpm_mgr Vtpm_util Vtpm_xen
