lib/sim/tenant.mli: Vtpm_access Vtpm_tpm Vtpm_util
