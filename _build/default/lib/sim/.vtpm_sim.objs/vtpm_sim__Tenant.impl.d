lib/sim/tenant.ml: Fmt Host Printf Result Vtpm_access Vtpm_crypto Vtpm_tpm Vtpm_util
