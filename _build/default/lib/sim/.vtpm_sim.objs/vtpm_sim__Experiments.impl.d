lib/sim/experiments.ml: Fmt Host List Metrics Monitor Policy Printf String Table Tenant Vtpm_access Vtpm_mgr Vtpm_tpm Vtpm_util Workload
