lib/sim/workload.mli: Metrics Tenant Vtpm_access Vtpm_util
