(** TPM key hierarchy.

    Keys form a tree rooted at the Storage Root Key: a child is created
    under a loaded parent storage key and leaves the TPM only as a
    *wrapped blob* — encrypted and MACed under a secret derived from the
    parent's private key. The Endorsement Key is generated at manufacture
    and never leaves. *)

type material = {
  usage : Types.key_usage;
  rsa : Vtpm_crypto.Rsa.key;
  usage_auth : string;  (** 20-byte usage secret *)
  migratable : bool;
  pcr_bound : Types.Pcr_selection.t;  (** key usable only under these PCRs *)
  pcr_digest_at_creation : string option;
}

type loaded = { material : material; parent : int }

type t = {
  handles : (int, loaded) Hashtbl.t;
  mutable next_handle : int;
  max_loaded : int;
}
(** Concrete for whole-TPM state serialization. *)

val create : ?max_loaded:int -> unit -> t
val loaded_count : t -> int

val insert : t -> parent:int -> material -> (int, int) result
(** Assign a transient handle, or [TPM_RESOURCES] at capacity. *)

val find : t -> int -> (loaded, int) result
val evict : t -> int -> (unit, int) result
val clear : t -> unit

(** {1 Key material serialization} *)

val serialize_material : material -> string
val deserialize_material : string -> (material, int) result

(** {1 Authenticated-encryption envelope}

    Shared by key wrapping and sealed-data blobs. [context]
    domain-separates the derived secret so a key blob can never be
    presented as a sealed-data blob or vice versa. *)

val protect : key:material -> context:string -> nonce8:string -> string -> string

val unprotect : key:material -> context:string -> string -> (string, int) result
(** MAC-checked decryption; [TPM_AUTHFAIL] on tamper or wrong key. *)

val wrap : parent:material -> material -> string
(** Child key blob under a parent storage key. *)

val unwrap : parent:material -> string -> (material, int) result
