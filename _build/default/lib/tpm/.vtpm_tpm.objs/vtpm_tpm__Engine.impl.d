lib/tpm/engine.ml: Auth Cmd Drbg Hashtbl Keystore List Nvram Pcr Printf Result Rsa Sha1 Stdlib String Types Vtpm_crypto Vtpm_util
