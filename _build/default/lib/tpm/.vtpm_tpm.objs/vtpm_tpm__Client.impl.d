lib/tpm/client.ml: Auth Cmd Fmt Hmac Result Sha1 String Types Vtpm_crypto Vtpm_util Wire
