lib/tpm/wire.ml: Auth Cmd List Option Printf String Types Vtpm_crypto Vtpm_util
