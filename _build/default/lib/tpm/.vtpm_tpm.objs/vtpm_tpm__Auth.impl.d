lib/tpm/auth.ml: Drbg Hashtbl Hmac Types Vtpm_crypto
