lib/tpm/keystore.mli: Hashtbl Types Vtpm_crypto
