lib/tpm/types.ml: Bytes Char List Printf Stdlib String
