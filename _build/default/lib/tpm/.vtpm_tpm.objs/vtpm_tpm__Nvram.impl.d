lib/tpm/nvram.ml: Bytes Hashtbl List Stdlib String Types Vtpm_util
