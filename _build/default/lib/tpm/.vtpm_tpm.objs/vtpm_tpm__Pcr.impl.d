lib/tpm/pcr.ml: Array List Sha1 String Types Vtpm_crypto Vtpm_util
