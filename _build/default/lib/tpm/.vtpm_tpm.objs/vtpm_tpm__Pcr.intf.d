lib/tpm/pcr.mli: Types Vtpm_util
