lib/tpm/nvram.mli: Types Vtpm_util
