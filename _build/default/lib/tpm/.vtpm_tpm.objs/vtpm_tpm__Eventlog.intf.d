lib/tpm/eventlog.mli: Format Pcr Types
