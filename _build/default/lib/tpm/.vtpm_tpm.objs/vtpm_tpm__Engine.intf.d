lib/tpm/engine.mli: Auth Cmd Hashtbl Keystore Nvram Pcr Types Vtpm_crypto Vtpm_util
