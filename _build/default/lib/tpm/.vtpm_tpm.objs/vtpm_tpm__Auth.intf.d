lib/tpm/auth.mli: Vtpm_crypto
