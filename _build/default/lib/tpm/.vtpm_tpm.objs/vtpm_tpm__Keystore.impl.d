lib/tpm/keystore.ml: Bignum Hashtbl Hmac Rsa Sha1 String Types Vtpm_crypto Vtpm_util Xtea
