lib/tpm/cmd.ml: Auth Types Vtpm_crypto Vtpm_util
