lib/tpm/client.mli: Auth Cmd Format Types Vtpm_crypto
