lib/tpm/eventlog.ml: Fmt List Pcr Printf String Types Vtpm_crypto Vtpm_util
