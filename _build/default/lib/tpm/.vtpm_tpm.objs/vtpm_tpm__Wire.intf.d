lib/tpm/wire.mli: Cmd
