(** The TPM 1.2 engine: PCR bank, NV storage, key hierarchy, authorization
    sessions and monotonic counters, executing structured commands at a
    given locality.

    One engine backs each vTPM instance; one more plays the hardware TPM
    at the root of trust. All randomness flows from the per-instance DRBG
    and key-generation RNG, both seeded at creation, so instances are
    reproducible. *)

type owner = { owner_auth : string; mutable srk : Keystore.material }
type counter = { label : string; mutable value : int; counter_auth : string }

type t = {
  rsa_bits : int;
  pcrs : Pcr.t;
  nv : Nvram.t;
  keys : Keystore.t;
  sessions : Auth.t;
  drbg : Vtpm_crypto.Drbg.t;
  keygen_rng : Vtpm_util.Rng.t;
  ek : Keystore.material;
  mutable owner : owner option;
  counters : (int, counter) Hashtbl.t;
  mutable next_counter_handle : int;
  mutable started : bool;
}
(** Concrete so the manager, migration and the attack harness (which
    parses stolen state) can inspect engine internals. *)

val create : ?rsa_bits:int -> seed:int -> unit -> t

val execute : t -> locality:int -> Cmd.request -> Cmd.response
(** Execute one command. Never raises; failures are TPM result codes in
    the response. *)

val has_owner : t -> bool
val composite_now : t -> Types.Pcr_selection.t -> string
val pcr_value : t -> int -> (string, int) result

val find_key : t -> int -> (Keystore.material, int) result
(** Resolve SRK/EK well-known handles or a transient handle. *)

(** {1 Quote format} *)

val quote_info : composite:string -> external_data:string -> string
(** The TPM_QUOTE_INFO structure a quote signs. *)

val verify_quote :
  pubkey:Vtpm_crypto.Rsa.public -> composite:string -> external_data:string -> signature:string -> bool
(** Verifier-side check of a quote produced by {!execute}. *)

(** {1 Whole-TPM state (vTPM suspend / resume / migration)}

    Serializes everything persistent plus loaded transient keys;
    authorization sessions are deliberately dropped (TPM semantics:
    sessions do not survive a save). *)

val serialize_state : t -> string
val deserialize_state : string -> (t, string) result
