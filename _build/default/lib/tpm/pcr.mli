(** Platform Configuration Register bank.

    24 SHA-1 registers with the TPM 1.2 locality model: PCR 0–15 static
    (never resettable), 16 debug, 17–22 dynamic (D-RTM, locality-gated),
    23 application. Extend is the canonical TPM fold:
    [new = SHA1(old || measurement)]. *)

type t

val create : unit -> t

val reset_value : string
(** All-zero initial value of static PCRs. *)

val drtm_initial : string
(** All-ones initial value of D-RTM PCRs. *)

val read : t -> int -> (string, int) result
(** PCR value or [Error TPM_BADINDEX]. *)

val extend : t -> locality:int -> int -> string -> (string, int) result
(** Fold a 20-byte measurement into a PCR; returns the new value. Errors:
    bad index, wrong measurement size, insufficient locality for D-RTM
    registers. *)

val resettable : locality:int -> int -> bool

val reset : t -> locality:int -> int -> (unit, int) result

val composite_hash : t -> Types.Pcr_selection.t -> string
(** TPM_COMPOSITE_HASH over a selection — the digest bound into sealed
    blobs, quotes and measurement gates. *)

val serialize : t -> Vtpm_util.Codec.writer -> unit
val deserialize : Vtpm_util.Codec.reader -> t
