(** Measurement event log (TCG-style).

    A PCR value alone is an opaque digest; attestation becomes meaningful
    when the attester also presents the ordered list of events it extended
    and the verifier replays it. This is the guest-side log;
    [Vtpm_access.Attestation] is the verifier. *)

type event = {
  pcr : int;
  digest : string;  (** the 20-byte value extended *)
  event_type : int;  (** TCG event type *)
  description : string;
}

(** Common TCG event types. *)

val ev_post_code : int
val ev_separator : int
val ev_action : int
val ev_ipl : int

type t

val create : unit -> t

val record : t -> pcr:int -> event_type:int -> description:string -> data:string -> string
(** Log an event over payload [data]; returns the digest to extend into
    the TPM. Computing the digest here guarantees log and PCR agree. *)

val record_digest : t -> pcr:int -> event_type:int -> description:string -> digest:string -> unit
(** Log a pre-computed 20-byte digest.
    @raise Invalid_argument on wrong digest size. *)

val events : t -> event list
(** Oldest first. *)

val length : t -> int

val replay : t -> Pcr.t
(** The PCR bank a TPM that saw exactly these extends would hold. *)

val expected_pcr : t -> pcr:int -> string
val expected_composite : t -> Types.Pcr_selection.t -> string

val serialize : t -> string
val deserialize : string -> (t, string) result

val pp_event : Format.formatter -> event -> unit
