(* Measurement event log (TCG-style).

   A PCR value alone is an opaque digest; attestation only becomes
   meaningful when the attester also presents the *event log* — the
   ordered list of (pcr, digest, description) entries it extended — and
   the verifier replays it to reproduce the PCR state. This module is the
   guest-side log; [Vtpm_access.Attestation] is the verifier. *)

type event = {
  pcr : int;
  digest : string; (* the 20-byte value extended *)
  event_type : int; (* TCG event type, e.g. EV_IPL = 13 *)
  description : string; (* human-readable: file name, command line, ... *)
}

type t = { mutable events : event list (* newest first *) }

(* Common TCG event types used by the examples. *)
let ev_post_code = 0x01
let ev_separator = 0x04
let ev_action = 0x05
let ev_ipl = 0x0D

let create () = { events = [] }

(* Record an event whose payload is [data]; returns the digest to extend.
   Keeping the digest computation here guarantees log and PCR agree. *)
let record t ~pcr ~event_type ~description ~data : string =
  let digest = Vtpm_crypto.Sha1.digest data in
  t.events <- { pcr; digest; event_type; description } :: t.events;
  digest

(* Record a pre-computed digest (when the caller hashed a large image
   itself). *)
let record_digest t ~pcr ~event_type ~description ~digest =
  if String.length digest <> Types.digest_size then
    invalid_arg "Eventlog.record_digest: digest must be 20 bytes";
  t.events <- { pcr; digest; event_type; description } :: t.events

let events t = List.rev t.events
let length t = List.length t.events

(* Replay the log into a fresh PCR bank: the PCR values a TPM that saw
   exactly these extends would hold. Replay uses the maximum locality so
   D-RTM registers can be replayed too. *)
let replay t : Pcr.t =
  let bank = Pcr.create () in
  List.iter
    (fun e ->
      match Pcr.extend bank ~locality:4 e.pcr e.digest with
      | Ok _ -> ()
      | Error rc -> invalid_arg (Printf.sprintf "Eventlog.replay: extend failed rc=0x%x" rc))
    (events t);
  bank

let expected_pcr t ~pcr : string =
  match Pcr.read (replay t) pcr with
  | Ok v -> v
  | Error rc -> invalid_arg (Printf.sprintf "Eventlog.expected_pcr: rc=0x%x" rc)

let expected_composite t (sel : Types.Pcr_selection.t) : string =
  Pcr.composite_hash (replay t) sel

(* --- Wire form (shipped to the verifier next to the quote) ------------------ *)

let serialize (t : t) : string =
  let w = Vtpm_util.Codec.writer () in
  let evs = events t in
  Vtpm_util.Codec.write_u32_int w (List.length evs);
  List.iter
    (fun e ->
      Vtpm_util.Codec.write_u8 w e.pcr;
      Vtpm_util.Codec.write_u32_int w e.event_type;
      Vtpm_util.Codec.write_bytes w e.digest;
      Vtpm_util.Codec.write_sized w e.description)
    evs;
  Vtpm_util.Codec.contents w

let deserialize (s : string) : (t, string) result =
  match
    let r = Vtpm_util.Codec.reader s in
    let n = Vtpm_util.Codec.read_u32_int r in
    let events = ref [] in
    for _ = 1 to n do
      let pcr = Vtpm_util.Codec.read_u8 r in
      let event_type = Vtpm_util.Codec.read_u32_int r in
      let digest = Vtpm_util.Codec.read_bytes r Types.digest_size in
      let description = Vtpm_util.Codec.read_sized r in
      events := { pcr; digest; event_type; description } :: !events
    done;
    if not (Vtpm_util.Codec.eof r) then failwith "trailing bytes";
    { events = !events }
  with
  | t -> Ok t
  | exception Vtpm_util.Codec.Truncated m -> Error ("truncated event log: " ^ m)
  | exception Failure m -> Error m

let pp_event ppf e =
  Fmt.pf ppf "PCR%-2d type=%02x %s %s" e.pcr e.event_type
    (Vtpm_util.Hex.fingerprint e.digest) e.description
