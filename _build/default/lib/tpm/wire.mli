(** TPM 1.2 wire format.

    Request: [tag(2) paramSize(4) ordinal(4) params... auth-trailer(s)].
    Response: [tag(2) paramSize(4) returnCode(4) params... nonceEven?].
    This is the byte boundary crossed by the split driver — the only thing
    the baseline manager (or a network attacker) gets to see. *)

exception Malformed of string

val tag_rqu_auth2_command : int
val tag_rsp_auth2_command : int

val encode_request : Cmd.request -> string

val decode_request : string -> Cmd.request
(** @raise Malformed on size/tag/ordinal errors or trailing bytes. *)

type header = { tag : int; size : int; ordinal : int }

val peek_header : string -> header option
(** Read just the header — what a monitor sitting on the ring can always
    extract, even from a command it does not understand. *)

val auth_arity : Cmd.request -> int
(** Number of authorization trailers the request carries (0, 1 or 2),
    which determines its tag. *)

val encode_response : Cmd.response -> string

val decode_response : string -> Cmd.response
(** @raise Malformed. *)
