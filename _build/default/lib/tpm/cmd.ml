(* Structured TPM commands and responses.

   The wire codec ([Codec]) maps these to/from TPM 1.2 byte format; the
   engine ([Engine]) executes them. Authorization proofs ride alongside the
   parameters exactly as in the spec's AUTH1/AUTH2 trailers. *)

type request =
  | Startup of Types.startup_type
  | Self_test_full
  | Get_capability of { cap : int; sub : int }
  | Extend of { pcr : int; digest : string }
  | Pcr_read of { pcr : int }
  | Pcr_reset of { pcr : int }
  | Get_random of { length : int }
  | Stir_random of { data : string }
  | Oiap
  | Osap of { entity_handle : int; nonce_odd_osap : string }
  | Take_ownership of { owner_auth : string; srk_auth : string }
  | Owner_clear of { auth : Auth.proof }
  | Force_clear
  | Read_pubek
  | Create_wrap_key of {
      parent : int;
      usage : Types.key_usage;
      key_auth : string;
      migratable : bool;
      pcr_bound : Types.Pcr_selection.t;
      auth : Auth.proof; (* parent usage auth *)
    }
  | Load_key2 of { parent : int; blob : string; auth : Auth.proof }
  | Flush_specific of { handle : int }
  | Seal of {
      key : int; (* storage key *)
      pcr_sel : Types.Pcr_selection.t;
      blob_auth : string; (* secret required to unseal *)
      data : string;
      auth : Auth.proof;
    }
  | Unseal of { key : int; blob : string; key_auth : Auth.proof; data_auth : Auth.proof }
  | Sign of { key : int; digest : string; auth : Auth.proof }
  | Quote of {
      key : int;
      external_data : string; (* 20-byte anti-replay nonce *)
      pcr_sel : Types.Pcr_selection.t;
      auth : Auth.proof;
    }
  | Nv_define_space of { index : int; size : int; attrs : Types.nv_attrs; auth : Auth.proof option }
  | Nv_write_value of { index : int; offset : int; data : string; auth : Auth.proof option }
  | Nv_read_value of { index : int; offset : int; length : int; auth : Auth.proof option }
  | Create_counter of { label : string; counter_auth : string; auth : Auth.proof }
  | Increment_counter of { handle : int; auth : Auth.proof }
  | Read_counter of { handle : int }
  | Release_counter of { handle : int; auth : Auth.proof }
  | Save_state

type response_body =
  | R_ok
  | R_capability of string
  | R_extend of { new_value : string }
  | R_pcr_value of string
  | R_random of string
  | R_session of { handle : int; nonce_even : string; nonce_even_osap : string option }
  | R_pubkey of Vtpm_crypto.Rsa.public
  | R_key_blob of { blob : string; pubkey : Vtpm_crypto.Rsa.public }
  | R_key_handle of int
  | R_sealed of string
  | R_unsealed of string
  | R_signature of string
  | R_quote of { composite : string; signature : string; sig_pubkey : Vtpm_crypto.Rsa.public }
  | R_nv_data of string
  | R_counter of { handle : int; label : string; value : int }
  | R_saved_state of string

type response = {
  rc : int; (* TPM return code; 0 = success *)
  body : response_body; (* meaningful iff rc = 0 *)
  nonce_even : string option; (* fresh rolling nonce when an auth session was used *)
}

let ok ?nonce_even body = { rc = Types.tpm_success; body; nonce_even }
let error rc = { rc; body = R_ok; nonce_even = None }

(* The ordinal of a request, the monitor's primary classification input. *)
let ordinal = function
  | Startup _ -> Types.ord_startup
  | Self_test_full -> Types.ord_self_test_full
  | Get_capability _ -> Types.ord_get_capability
  | Extend _ -> Types.ord_extend
  | Pcr_read _ -> Types.ord_pcr_read
  | Pcr_reset _ -> Types.ord_pcr_reset
  | Get_random _ -> Types.ord_get_random
  | Stir_random _ -> Types.ord_stir_random
  | Oiap -> Types.ord_oiap
  | Osap _ -> Types.ord_osap
  | Take_ownership _ -> Types.ord_take_ownership
  | Owner_clear _ -> Types.ord_owner_clear
  | Force_clear -> Types.ord_force_clear
  | Read_pubek -> Types.ord_read_pubek
  | Create_wrap_key _ -> Types.ord_create_wrap_key
  | Load_key2 _ -> Types.ord_load_key2
  | Flush_specific _ -> Types.ord_flush_specific
  | Seal _ -> Types.ord_seal
  | Unseal _ -> Types.ord_unseal
  | Sign _ -> Types.ord_sign
  | Quote _ -> Types.ord_quote
  | Nv_define_space _ -> Types.ord_nv_define_space
  | Nv_write_value _ -> Types.ord_nv_write_value
  | Nv_read_value _ -> Types.ord_nv_read_value
  | Create_counter _ -> Types.ord_create_counter
  | Increment_counter _ -> Types.ord_increment_counter
  | Read_counter _ -> Types.ord_read_counter
  | Release_counter _ -> Types.ord_release_counter
  | Save_state -> Types.ord_save_state

(* Digest of the auth-relevant parameters (TPM "1H" digest): SHA-1 over the
   ordinal and the in-parameters excluding the auth trailer. Client and
   engine both call this, so proofs computed by [Auth.make_proof] verify. *)
let param_digest (req : request) : string =
  let w = Vtpm_util.Codec.writer () in
  Vtpm_util.Codec.write_u32_int w (ordinal req);
  (match req with
  | Startup t ->
      Vtpm_util.Codec.write_u16 w
        (match t with Types.St_clear -> 1 | Types.St_state -> 2 | Types.St_deactivated -> 3)
  | Self_test_full | Oiap | Force_clear | Read_pubek | Save_state -> ()
  | Get_capability { cap; sub } ->
      Vtpm_util.Codec.write_u32_int w cap;
      Vtpm_util.Codec.write_u32_int w sub
  | Extend { pcr; digest } ->
      Vtpm_util.Codec.write_u32_int w pcr;
      Vtpm_util.Codec.write_bytes w digest
  | Pcr_read { pcr } | Pcr_reset { pcr } -> Vtpm_util.Codec.write_u32_int w pcr
  | Get_random { length } -> Vtpm_util.Codec.write_u32_int w length
  | Stir_random { data } -> Vtpm_util.Codec.write_sized w data
  | Osap { entity_handle; nonce_odd_osap } ->
      Vtpm_util.Codec.write_u32_int w entity_handle;
      Vtpm_util.Codec.write_bytes w nonce_odd_osap
  | Take_ownership { owner_auth; srk_auth } ->
      Vtpm_util.Codec.write_sized w owner_auth;
      Vtpm_util.Codec.write_sized w srk_auth
  | Owner_clear _ -> ()
  | Create_wrap_key { parent; usage; key_auth; migratable; pcr_bound; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w parent;
      Vtpm_util.Codec.write_u16 w (Types.key_usage_to_int usage);
      Vtpm_util.Codec.write_sized w key_auth;
      Vtpm_util.Codec.write_u8 w (if migratable then 1 else 0);
      Vtpm_util.Codec.write_sized w (Types.Pcr_selection.to_bitmap pcr_bound)
  | Load_key2 { parent; blob; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w parent;
      Vtpm_util.Codec.write_sized w blob
  | Flush_specific { handle } -> Vtpm_util.Codec.write_u32_int w handle
  | Seal { key; pcr_sel; blob_auth; data; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w key;
      Vtpm_util.Codec.write_sized w (Types.Pcr_selection.to_bitmap pcr_sel);
      Vtpm_util.Codec.write_sized w blob_auth;
      Vtpm_util.Codec.write_sized w data
  | Unseal { key; blob; key_auth = _; data_auth = _ } ->
      Vtpm_util.Codec.write_u32_int w key;
      Vtpm_util.Codec.write_sized w blob
  | Sign { key; digest; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w key;
      Vtpm_util.Codec.write_sized w digest
  | Quote { key; external_data; pcr_sel; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w key;
      Vtpm_util.Codec.write_bytes w external_data;
      Vtpm_util.Codec.write_sized w (Types.Pcr_selection.to_bitmap pcr_sel)
  | Nv_define_space { index; size; attrs; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w index;
      Vtpm_util.Codec.write_u32_int w size;
      Vtpm_util.Codec.write_u8 w (if attrs.nv_owner_write then 1 else 0);
      Vtpm_util.Codec.write_u8 w (if attrs.nv_owner_read then 1 else 0);
      Vtpm_util.Codec.write_u8 w (if attrs.nv_write_once then 1 else 0);
      Vtpm_util.Codec.write_sized w (Types.Pcr_selection.to_bitmap attrs.nv_read_pcrs);
      Vtpm_util.Codec.write_sized w (Types.Pcr_selection.to_bitmap attrs.nv_write_pcrs)
  | Nv_write_value { index; offset; data; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w index;
      Vtpm_util.Codec.write_u32_int w offset;
      Vtpm_util.Codec.write_sized w data
  | Nv_read_value { index; offset; length; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w index;
      Vtpm_util.Codec.write_u32_int w offset;
      Vtpm_util.Codec.write_u32_int w length
  | Create_counter { label; counter_auth; auth = _ } ->
      Vtpm_util.Codec.write_sized w label;
      Vtpm_util.Codec.write_sized w counter_auth
  | Increment_counter { handle; auth = _ }
  | Read_counter { handle }
  | Release_counter { handle; auth = _ } ->
      Vtpm_util.Codec.write_u32_int w handle);
  Vtpm_crypto.Sha1.digest (Vtpm_util.Codec.contents w)
