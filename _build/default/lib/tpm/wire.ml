(* TPM 1.2 wire format.

   Request:  tag(2) paramSize(4) ordinal(4) params... [auth trailer(s)]
   Response: tag(2) paramSize(4) returnCode(4) params... [nonceEven(20)]

   Auth trailer (per session): authHandle(4) nonceOdd(20) continue(1)
   authData(20). The structured layer ([Cmd]) carries proofs inline; this
   module is the byte boundary crossed by the split driver, and the only
   thing the baseline manager (and a network attacker) gets to see. *)

module C = Vtpm_util.Codec

let tag_rqu_auth2_command = 0x00C3
let tag_rsp_auth2_command = 0x00C6

exception Malformed of string

let write_proof w (p : Auth.proof) =
  C.write_u32_int w p.handle;
  C.write_bytes w p.nonce_odd;
  C.write_u8 w (if p.continue then 1 else 0);
  C.write_bytes w p.hmac

let read_proof r : Auth.proof =
  let handle = C.read_u32_int r in
  let nonce_odd = C.read_bytes r Types.digest_size in
  let continue = C.read_u8 r = 1 in
  let hmac = C.read_bytes r Types.digest_size in
  { handle; nonce_odd; continue; hmac }

(* Number of auth trailers a request carries determines its tag. *)
let auth_arity (req : Cmd.request) =
  match req with
  | Cmd.Unseal _ -> 2
  | Cmd.Owner_clear _ | Cmd.Create_wrap_key _ | Cmd.Load_key2 _ | Cmd.Seal _ | Cmd.Sign _
  | Cmd.Quote _ | Cmd.Create_counter _ | Cmd.Increment_counter _ | Cmd.Release_counter _ ->
      1
  | Cmd.Nv_define_space { auth; _ } | Cmd.Nv_write_value { auth; _ } | Cmd.Nv_read_value { auth; _ }
    ->
      if auth = None then 0 else 1
  | _ -> 0

let startup_code = function Types.St_clear -> 1 | Types.St_state -> 2 | Types.St_deactivated -> 3

let startup_of_code = function
  | 1 -> Types.St_clear
  | 2 -> Types.St_state
  | 3 -> Types.St_deactivated
  | c -> raise (Malformed (Printf.sprintf "bad startup type %d" c))

let write_nv_attrs w (a : Types.nv_attrs) =
  C.write_u8 w (if a.nv_owner_write then 1 else 0);
  C.write_u8 w (if a.nv_owner_read then 1 else 0);
  C.write_u8 w (if a.nv_write_once then 1 else 0);
  C.write_sized w (Types.Pcr_selection.to_bitmap a.nv_read_pcrs);
  C.write_sized w (Types.Pcr_selection.to_bitmap a.nv_write_pcrs)

let read_nv_attrs r : Types.nv_attrs =
  let nv_owner_write = C.read_u8 r = 1 in
  let nv_owner_read = C.read_u8 r = 1 in
  let nv_write_once = C.read_u8 r = 1 in
  let nv_read_pcrs = Types.Pcr_selection.of_bitmap (C.read_sized r) in
  let nv_write_pcrs = Types.Pcr_selection.of_bitmap (C.read_sized r) in
  { nv_owner_write; nv_owner_read; nv_write_once; nv_read_pcrs; nv_write_pcrs }

(* --- Request encoding ----------------------------------------------------- *)

let encode_request (req : Cmd.request) : string =
  let params = C.writer () in
  let auths = ref [] in
  let push_auth a = auths := !auths @ [ a ] in
  (match req with
  | Cmd.Startup t -> C.write_u16 params (startup_code t)
  | Cmd.Self_test_full | Cmd.Oiap | Cmd.Force_clear | Cmd.Read_pubek | Cmd.Save_state -> ()
  | Cmd.Get_capability { cap; sub } ->
      C.write_u32_int params cap;
      C.write_u32_int params sub
  | Cmd.Extend { pcr; digest } ->
      C.write_u32_int params pcr;
      C.write_bytes params digest
  | Cmd.Pcr_read { pcr } | Cmd.Pcr_reset { pcr } -> C.write_u32_int params pcr
  | Cmd.Get_random { length } -> C.write_u32_int params length
  | Cmd.Stir_random { data } -> C.write_sized params data
  | Cmd.Osap { entity_handle; nonce_odd_osap } ->
      C.write_u32_int params entity_handle;
      C.write_bytes params nonce_odd_osap
  | Cmd.Take_ownership { owner_auth; srk_auth } ->
      C.write_sized params owner_auth;
      C.write_sized params srk_auth
  | Cmd.Owner_clear { auth } -> push_auth auth
  | Cmd.Create_wrap_key { parent; usage; key_auth; migratable; pcr_bound; auth } ->
      C.write_u32_int params parent;
      C.write_u16 params (Types.key_usage_to_int usage);
      C.write_sized params key_auth;
      C.write_u8 params (if migratable then 1 else 0);
      C.write_sized params (Types.Pcr_selection.to_bitmap pcr_bound);
      push_auth auth
  | Cmd.Load_key2 { parent; blob; auth } ->
      C.write_u32_int params parent;
      C.write_sized params blob;
      push_auth auth
  | Cmd.Flush_specific { handle } -> C.write_u32_int params handle
  | Cmd.Seal { key; pcr_sel; blob_auth; data; auth } ->
      C.write_u32_int params key;
      C.write_sized params (Types.Pcr_selection.to_bitmap pcr_sel);
      C.write_sized params blob_auth;
      C.write_sized params data;
      push_auth auth
  | Cmd.Unseal { key; blob; key_auth; data_auth } ->
      C.write_u32_int params key;
      C.write_sized params blob;
      push_auth key_auth;
      push_auth data_auth
  | Cmd.Sign { key; digest; auth } ->
      C.write_u32_int params key;
      C.write_sized params digest;
      push_auth auth
  | Cmd.Quote { key; external_data; pcr_sel; auth } ->
      C.write_u32_int params key;
      C.write_bytes params external_data;
      C.write_sized params (Types.Pcr_selection.to_bitmap pcr_sel);
      push_auth auth
  | Cmd.Nv_define_space { index; size; attrs; auth } ->
      C.write_u32_int params index;
      C.write_u32_int params size;
      write_nv_attrs params attrs;
      Option.iter push_auth auth
  | Cmd.Nv_write_value { index; offset; data; auth } ->
      C.write_u32_int params index;
      C.write_u32_int params offset;
      C.write_sized params data;
      Option.iter push_auth auth
  | Cmd.Nv_read_value { index; offset; length; auth } ->
      C.write_u32_int params index;
      C.write_u32_int params offset;
      C.write_u32_int params length;
      Option.iter push_auth auth
  | Cmd.Create_counter { label; counter_auth; auth } ->
      C.write_sized params label;
      C.write_sized params counter_auth;
      push_auth auth
  | Cmd.Increment_counter { handle; auth } ->
      C.write_u32_int params handle;
      push_auth auth
  | Cmd.Read_counter { handle } -> C.write_u32_int params handle
  | Cmd.Release_counter { handle; auth } ->
      C.write_u32_int params handle;
      push_auth auth);
  let tag =
    match List.length !auths with
    | 0 -> Types.tag_rqu_command
    | 1 -> Types.tag_rqu_auth1_command
    | _ -> tag_rqu_auth2_command
  in
  let body = C.writer () in
  C.write_u32_int body (Cmd.ordinal req);
  C.write_bytes body (C.contents params);
  List.iter (fun a -> write_proof body a) !auths;
  let body = C.contents body in
  let w = C.writer () in
  C.write_u16 w tag;
  C.write_u32_int w (2 + 4 + String.length body);
  C.write_bytes w body;
  C.contents w

(* Peek at the header without a full parse: what a monitor sitting on the
   ring can always extract, even from a command it does not understand. *)
type header = { tag : int; size : int; ordinal : int }

let peek_header (bytes : string) : header option =
  if String.length bytes < 10 then None
  else begin
    let r = C.reader bytes in
    let tag = C.read_u16 r in
    let size = C.read_u32_int r in
    let ordinal = C.read_u32_int r in
    Some { tag; size; ordinal }
  end

(* --- Request decoding ----------------------------------------------------- *)

let rec decode_request (bytes : string) : Cmd.request =
  (* All short-input conditions surface as [Malformed], not as the
     codec's internal exception. *)
  try decode_request_exn bytes
  with C.Truncated m -> raise (Malformed ("truncated: " ^ m))

and decode_request_exn (bytes : string) : Cmd.request =
  let r = C.reader bytes in
  let tag = C.read_u16 r in
  let size = C.read_u32_int r in
  if size <> String.length bytes then
    raise (Malformed (Printf.sprintf "size field %d <> actual %d" size (String.length bytes)));
  if
    tag <> Types.tag_rqu_command && tag <> Types.tag_rqu_auth1_command
    && tag <> tag_rqu_auth2_command
  then raise (Malformed (Printf.sprintf "bad request tag 0x%04x" tag));
  let ordinal = C.read_u32_int r in
  let auth1 () = read_proof r in
  let opt_auth () = if C.eof r then None else Some (read_proof r) in
  let req =
    if ordinal = Types.ord_startup then Cmd.Startup (startup_of_code (C.read_u16 r))
    else if ordinal = Types.ord_self_test_full then Cmd.Self_test_full
    else if ordinal = Types.ord_get_capability then begin
      let cap = C.read_u32_int r in
      let sub = C.read_u32_int r in
      Cmd.Get_capability { cap; sub }
    end
    else if ordinal = Types.ord_extend then begin
      let pcr = C.read_u32_int r in
      let digest = C.read_bytes r Types.digest_size in
      Cmd.Extend { pcr; digest }
    end
    else if ordinal = Types.ord_pcr_read then Cmd.Pcr_read { pcr = C.read_u32_int r }
    else if ordinal = Types.ord_pcr_reset then Cmd.Pcr_reset { pcr = C.read_u32_int r }
    else if ordinal = Types.ord_get_random then Cmd.Get_random { length = C.read_u32_int r }
    else if ordinal = Types.ord_stir_random then Cmd.Stir_random { data = C.read_sized r }
    else if ordinal = Types.ord_oiap then Cmd.Oiap
    else if ordinal = Types.ord_osap then begin
      let entity_handle = C.read_u32_int r in
      let nonce_odd_osap = C.read_bytes r Types.digest_size in
      Cmd.Osap { entity_handle; nonce_odd_osap }
    end
    else if ordinal = Types.ord_take_ownership then begin
      let owner_auth = C.read_sized r in
      let srk_auth = C.read_sized r in
      Cmd.Take_ownership { owner_auth; srk_auth }
    end
    else if ordinal = Types.ord_owner_clear then Cmd.Owner_clear { auth = auth1 () }
    else if ordinal = Types.ord_force_clear then Cmd.Force_clear
    else if ordinal = Types.ord_read_pubek then Cmd.Read_pubek
    else if ordinal = Types.ord_create_wrap_key then begin
      let parent = C.read_u32_int r in
      let usage_int = C.read_u16 r in
      let key_auth = C.read_sized r in
      let migratable = C.read_u8 r = 1 in
      let pcr_bound = Types.Pcr_selection.of_bitmap (C.read_sized r) in
      let usage =
        match Types.key_usage_of_int usage_int with
        | Some u -> u
        | None -> raise (Malformed (Printf.sprintf "bad key usage 0x%x" usage_int))
      in
      Cmd.Create_wrap_key { parent; usage; key_auth; migratable; pcr_bound; auth = auth1 () }
    end
    else if ordinal = Types.ord_load_key2 then begin
      let parent = C.read_u32_int r in
      let blob = C.read_sized r in
      Cmd.Load_key2 { parent; blob; auth = auth1 () }
    end
    else if ordinal = Types.ord_flush_specific then
      Cmd.Flush_specific { handle = C.read_u32_int r }
    else if ordinal = Types.ord_seal then begin
      let key = C.read_u32_int r in
      let pcr_sel = Types.Pcr_selection.of_bitmap (C.read_sized r) in
      let blob_auth = C.read_sized r in
      let data = C.read_sized r in
      Cmd.Seal { key; pcr_sel; blob_auth; data; auth = auth1 () }
    end
    else if ordinal = Types.ord_unseal then begin
      let key = C.read_u32_int r in
      let blob = C.read_sized r in
      let key_auth = auth1 () in
      let data_auth = auth1 () in
      Cmd.Unseal { key; blob; key_auth; data_auth }
    end
    else if ordinal = Types.ord_sign then begin
      let key = C.read_u32_int r in
      let digest = C.read_sized r in
      Cmd.Sign { key; digest; auth = auth1 () }
    end
    else if ordinal = Types.ord_quote then begin
      let key = C.read_u32_int r in
      let external_data = C.read_bytes r Types.digest_size in
      let pcr_sel = Types.Pcr_selection.of_bitmap (C.read_sized r) in
      Cmd.Quote { key; external_data; pcr_sel; auth = auth1 () }
    end
    else if ordinal = Types.ord_nv_define_space then begin
      let index = C.read_u32_int r in
      let size = C.read_u32_int r in
      let attrs = read_nv_attrs r in
      Cmd.Nv_define_space { index; size; attrs; auth = opt_auth () }
    end
    else if ordinal = Types.ord_nv_write_value then begin
      let index = C.read_u32_int r in
      let offset = C.read_u32_int r in
      let data = C.read_sized r in
      Cmd.Nv_write_value { index; offset; data; auth = opt_auth () }
    end
    else if ordinal = Types.ord_nv_read_value then begin
      let index = C.read_u32_int r in
      let offset = C.read_u32_int r in
      let length = C.read_u32_int r in
      Cmd.Nv_read_value { index; offset; length; auth = opt_auth () }
    end
    else if ordinal = Types.ord_create_counter then begin
      let label = C.read_sized r in
      let counter_auth = C.read_sized r in
      Cmd.Create_counter { label; counter_auth; auth = auth1 () }
    end
    else if ordinal = Types.ord_increment_counter then begin
      let handle = C.read_u32_int r in
      Cmd.Increment_counter { handle; auth = auth1 () }
    end
    else if ordinal = Types.ord_read_counter then Cmd.Read_counter { handle = C.read_u32_int r }
    else if ordinal = Types.ord_release_counter then begin
      let handle = C.read_u32_int r in
      Cmd.Release_counter { handle; auth = auth1 () }
    end
    else if ordinal = Types.ord_save_state then Cmd.Save_state
    else raise (Malformed (Printf.sprintf "unknown ordinal 0x%x" ordinal))
  in
  if not (C.eof r) then raise (Malformed "trailing bytes after request");
  req

(* --- Response encoding / decoding ------------------------------------------ *)

let body_kind = function
  | Cmd.R_ok -> 0
  | Cmd.R_capability _ -> 1
  | Cmd.R_extend _ -> 2
  | Cmd.R_pcr_value _ -> 3
  | Cmd.R_random _ -> 4
  | Cmd.R_session _ -> 5
  | Cmd.R_pubkey _ -> 6
  | Cmd.R_key_blob _ -> 7
  | Cmd.R_key_handle _ -> 8
  | Cmd.R_sealed _ -> 9
  | Cmd.R_unsealed _ -> 10
  | Cmd.R_signature _ -> 11
  | Cmd.R_quote _ -> 12
  | Cmd.R_nv_data _ -> 13
  | Cmd.R_counter _ -> 14
  | Cmd.R_saved_state _ -> 15

let encode_response (resp : Cmd.response) : string =
  let params = C.writer () in
  if resp.rc = Types.tpm_success then begin
    C.write_u8 params (body_kind resp.body);
    match resp.body with
    | Cmd.R_ok -> ()
    | Cmd.R_capability s | Cmd.R_pcr_value s | Cmd.R_random s | Cmd.R_sealed s
    | Cmd.R_unsealed s | Cmd.R_signature s | Cmd.R_nv_data s | Cmd.R_saved_state s ->
        C.write_sized params s
    | Cmd.R_extend { new_value } -> C.write_bytes params new_value
    | Cmd.R_session { handle; nonce_even; nonce_even_osap } ->
        C.write_u32_int params handle;
        C.write_bytes params nonce_even;
        (match nonce_even_osap with
        | None -> C.write_u8 params 0
        | Some n ->
            C.write_u8 params 1;
            C.write_bytes params n)
    | Cmd.R_pubkey pub -> C.write_sized params (Vtpm_crypto.Rsa.public_to_bytes pub)
    | Cmd.R_key_blob { blob; pubkey } ->
        C.write_sized params blob;
        C.write_sized params (Vtpm_crypto.Rsa.public_to_bytes pubkey)
    | Cmd.R_key_handle h -> C.write_u32_int params h
    | Cmd.R_quote { composite; signature; sig_pubkey } ->
        C.write_bytes params composite;
        C.write_sized params signature;
        C.write_sized params (Vtpm_crypto.Rsa.public_to_bytes sig_pubkey)
    | Cmd.R_counter { handle; label; value } ->
        C.write_u32_int params handle;
        C.write_sized params label;
        C.write_u32_int params value
  end;
  (match resp.nonce_even with None -> () | Some n -> C.write_bytes params n);
  let tag = if resp.nonce_even = None then Types.tag_rsp_command else Types.tag_rsp_auth1_command in
  let body = C.contents params in
  let w = C.writer () in
  C.write_u16 w tag;
  C.write_u32_int w (2 + 4 + 4 + String.length body);
  C.write_u32_int w resp.rc;
  C.write_bytes w body;
  C.contents w

let read_pub_exn r =
  match Vtpm_crypto.Rsa.public_of_bytes (C.read_sized r) with
  | Some pub -> pub
  | None -> raise (Malformed "bad public key")

let rec decode_response (bytes : string) : Cmd.response =
  try decode_response_exn bytes
  with C.Truncated m -> raise (Malformed ("truncated: " ^ m))

and decode_response_exn (bytes : string) : Cmd.response =
  let r = C.reader bytes in
  let tag = C.read_u16 r in
  let size = C.read_u32_int r in
  if size <> String.length bytes then raise (Malformed "response size mismatch");
  if tag <> Types.tag_rsp_command && tag <> Types.tag_rsp_auth1_command && tag <> tag_rsp_auth2_command
  then raise (Malformed (Printf.sprintf "bad response tag 0x%04x" tag));
  let rc = C.read_u32_int r in
  if rc <> Types.tpm_success then begin
    let nonce_even =
      if tag <> Types.tag_rsp_command && C.remaining r >= Types.digest_size then
        Some (C.read_bytes r Types.digest_size)
      else None
    in
    { Cmd.rc; body = Cmd.R_ok; nonce_even }
  end
  else begin
    let kind = C.read_u8 r in
    let body =
      match kind with
      | 0 -> Cmd.R_ok
      | 1 -> Cmd.R_capability (C.read_sized r)
      | 2 -> Cmd.R_extend { new_value = C.read_bytes r Types.digest_size }
      | 3 -> Cmd.R_pcr_value (C.read_sized r)
      | 4 -> Cmd.R_random (C.read_sized r)
      | 5 ->
          let handle = C.read_u32_int r in
          let nonce_even = C.read_bytes r Types.digest_size in
          let nonce_even_osap =
            if C.read_u8 r = 1 then Some (C.read_bytes r Types.digest_size) else None
          in
          Cmd.R_session { handle; nonce_even; nonce_even_osap }
      | 6 -> Cmd.R_pubkey (read_pub_exn r)
      | 7 ->
          let blob = C.read_sized r in
          let pubkey = read_pub_exn r in
          Cmd.R_key_blob { blob; pubkey }
      | 8 -> Cmd.R_key_handle (C.read_u32_int r)
      | 9 -> Cmd.R_sealed (C.read_sized r)
      | 10 -> Cmd.R_unsealed (C.read_sized r)
      | 11 -> Cmd.R_signature (C.read_sized r)
      | 12 ->
          let composite = C.read_bytes r Types.digest_size in
          let signature = C.read_sized r in
          let sig_pubkey = read_pub_exn r in
          Cmd.R_quote { composite; signature; sig_pubkey }
      | 13 -> Cmd.R_nv_data (C.read_sized r)
      | 14 ->
          let handle = C.read_u32_int r in
          let label = C.read_sized r in
          let value = C.read_u32_int r in
          Cmd.R_counter { handle; label; value }
      | 15 -> Cmd.R_saved_state (C.read_sized r)
      | k -> raise (Malformed (Printf.sprintf "bad response body kind %d" k))
    in
    let nonce_even =
      if tag = Types.tag_rsp_command then None else Some (C.read_bytes r Types.digest_size)
    in
    { Cmd.rc; body; nonce_even }
  end
