(* Tests for the TPM 1.2 engine: PCR semantics, NV storage, the key
   hierarchy, authorization sessions (including replay), command
   behaviour for every implemented ordinal, the wire codec and full-state
   serialization. *)

open Vtpm_tpm

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let zeros = String.make 20 '\x00'

(* --- PCR bank ------------------------------------------------------------- *)

let test_pcr_initial_values () =
  let p = Pcr.create () in
  check_s "static starts zero" zeros (Result.get_ok (Pcr.read p 0));
  check_s "drtm starts ones" (String.make 20 '\xff') (Result.get_ok (Pcr.read p 17))

let test_pcr_extend_algebra () =
  let p = Pcr.create () in
  let m1 = Vtpm_crypto.Sha1.digest "a" and m2 = Vtpm_crypto.Sha1.digest "b" in
  let v1 = Result.get_ok (Pcr.extend p ~locality:0 4 m1) in
  check_s "fold definition" (Vtpm_crypto.Sha1.digest (zeros ^ m1)) v1;
  let v2 = Result.get_ok (Pcr.extend p ~locality:0 4 m2) in
  check_s "second fold" (Vtpm_crypto.Sha1.digest (v1 ^ m2)) v2

let test_pcr_extend_order_matters () =
  let p1 = Pcr.create () and p2 = Pcr.create () in
  let m1 = Vtpm_crypto.Sha1.digest "a" and m2 = Vtpm_crypto.Sha1.digest "b" in
  ignore (Pcr.extend p1 ~locality:0 0 m1);
  ignore (Pcr.extend p1 ~locality:0 0 m2);
  ignore (Pcr.extend p2 ~locality:0 0 m2);
  ignore (Pcr.extend p2 ~locality:0 0 m1);
  check_b "order sensitive" true
    (Result.get_ok (Pcr.read p1 0) <> Result.get_ok (Pcr.read p2 0))

let test_pcr_bad_index () =
  let p = Pcr.create () in
  check_b "negative" true (Pcr.read p (-1) = Error Types.tpm_badindex);
  check_b "too large" true (Pcr.read p 24 = Error Types.tpm_badindex)

let test_pcr_bad_measurement_size () =
  let p = Pcr.create () in
  check_b "short digest" true (Pcr.extend p ~locality:0 0 "short" = Error Types.tpm_bad_parameter)

let test_pcr_reset_rules () =
  let p = Pcr.create () in
  check_b "static not resettable" true (Pcr.reset p ~locality:0 0 = Error Types.tpm_bad_locality);
  check_b "debug resettable" true (Pcr.reset p ~locality:0 16 = Ok ());
  check_b "app resettable" true (Pcr.reset p ~locality:0 23 = Ok ());
  check_b "drtm needs locality" true (Pcr.reset p ~locality:0 18 = Error Types.tpm_bad_locality);
  check_b "drtm at locality 2" true (Pcr.reset p ~locality:2 18 = Ok ())

let test_pcr_drtm_extend_locality () =
  let p = Pcr.create () in
  let m = Vtpm_crypto.Sha1.digest "x" in
  check_b "pcr17 needs locality >=2" true
    (Pcr.extend p ~locality:0 17 m = Error Types.tpm_bad_locality);
  check_b "pcr17 at 2 ok" true (Result.is_ok (Pcr.extend p ~locality:2 17 m));
  check_b "pcr20 at 1 ok" true (Result.is_ok (Pcr.extend p ~locality:1 20 m))

let test_pcr_composite_stability () =
  let p = Pcr.create () in
  let sel = Types.Pcr_selection.of_list [ 0; 3; 7 ] in
  let c1 = Pcr.composite_hash p sel in
  check_s "deterministic" c1 (Pcr.composite_hash p sel);
  ignore (Pcr.extend p ~locality:0 3 (Vtpm_crypto.Sha1.digest "change"));
  check_b "tracks selected pcr" true (c1 <> Pcr.composite_hash p sel);
  let c_other = Pcr.composite_hash p (Types.Pcr_selection.of_list [ 1; 2 ]) in
  ignore (Pcr.extend p ~locality:0 3 (Vtpm_crypto.Sha1.digest "more"));
  check_s "unselected pcr irrelevant" c_other (Pcr.composite_hash p (Types.Pcr_selection.of_list [ 1; 2 ]))

let test_pcr_selection_bitmap () =
  let sel = Types.Pcr_selection.of_list [ 0; 8; 23 ] in
  let bitmap = Types.Pcr_selection.to_bitmap sel in
  check_i "3 bytes" 3 (String.length bitmap);
  check_b "roundtrip" true (Types.Pcr_selection.of_bitmap bitmap = Types.Pcr_selection.to_list sel);
  check_b "dedup" true
    (Types.Pcr_selection.to_list (Types.Pcr_selection.of_list [ 5; 5; 2 ]) = [ 2; 5 ])

let test_pcr_serialization () =
  let p = Pcr.create () in
  ignore (Pcr.extend p ~locality:0 9 (Vtpm_crypto.Sha1.digest "v"));
  let w = Vtpm_util.Codec.writer () in
  Pcr.serialize p w;
  let p2 = Pcr.deserialize (Vtpm_util.Codec.reader (Vtpm_util.Codec.contents w)) in
  check_s "restored" (Result.get_ok (Pcr.read p 9)) (Result.get_ok (Pcr.read p2 9))

(* --- NVRAM ------------------------------------------------------------------- *)

let no_pcr = Types.Pcr_selection.of_list []
let composite_const _ = "composite"

let test_nv_define_write_read () =
  let nv = Nvram.create () in
  check_b "define" true (Nvram.define nv ~index:1 ~size:32 ~attrs:Types.nv_attrs_default = Ok ());
  check_b "write" true
    (Nvram.write nv ~index:1 ~offset:4 ~data:"hello" ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Ok ());
  check_b "read" true
    (Nvram.read nv ~index:1 ~offset:4 ~length:5 ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Ok "hello")

let test_nv_double_define () =
  let nv = Nvram.create () in
  ignore (Nvram.define nv ~index:1 ~size:8 ~attrs:Types.nv_attrs_default);
  check_b "second define fails" true
    (Nvram.define nv ~index:1 ~size:8 ~attrs:Types.nv_attrs_default = Error Types.tpm_area_locked)

let test_nv_budget () =
  let nv = Nvram.create ~budget:100 () in
  check_b "fits" true (Nvram.define nv ~index:1 ~size:60 ~attrs:Types.nv_attrs_default = Ok ());
  check_b "over budget" true
    (Nvram.define nv ~index:2 ~size:60 ~attrs:Types.nv_attrs_default = Error Types.tpm_nospace);
  check_b "undefine refunds" true (Nvram.undefine nv ~index:1 = Ok ());
  check_b "fits again" true (Nvram.define nv ~index:2 ~size:60 ~attrs:Types.nv_attrs_default = Ok ())

let test_nv_bounds () =
  let nv = Nvram.create () in
  ignore (Nvram.define nv ~index:1 ~size:8 ~attrs:Types.nv_attrs_default);
  check_b "write overflow" true
    (Nvram.write nv ~index:1 ~offset:5 ~data:"toolong" ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Error Types.tpm_nospace);
  check_b "read overflow" true
    (Nvram.read nv ~index:1 ~offset:5 ~length:10 ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Error Types.tpm_nospace);
  check_b "missing index" true
    (Nvram.read nv ~index:9 ~offset:0 ~length:1 ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Error Types.tpm_badindex)

let test_nv_write_once () =
  let nv = Nvram.create () in
  let attrs = { Types.nv_attrs_default with Types.nv_write_once = true } in
  ignore (Nvram.define nv ~index:1 ~size:8 ~attrs);
  check_b "first write" true
    (Nvram.write nv ~index:1 ~offset:0 ~data:"x" ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Ok ());
  check_b "locked after" true
    (Nvram.write nv ~index:1 ~offset:0 ~data:"y" ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Error Types.tpm_area_locked)

let test_nv_owner_gate () =
  let nv = Nvram.create () in
  let attrs = { Types.nv_attrs_default with Types.nv_owner_write = true; nv_owner_read = true } in
  ignore (Nvram.define nv ~index:1 ~size:8 ~attrs);
  check_b "unauthorized write" true
    (Nvram.write nv ~index:1 ~offset:0 ~data:"x" ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Error Types.tpm_authfail);
  check_b "authorized write" true
    (Nvram.write nv ~index:1 ~offset:0 ~data:"x" ~owner_authorized:true
       ~composite_now:composite_const ~expected_digest:None
    = Ok ());
  check_b "unauthorized read" true
    (Nvram.read nv ~index:1 ~offset:0 ~length:1 ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Error Types.tpm_authfail)

let test_nv_serialization () =
  let nv = Nvram.create () in
  ignore (Nvram.define nv ~index:7 ~size:16 ~attrs:Types.nv_attrs_default);
  ignore
    (Nvram.write nv ~index:7 ~offset:0 ~data:"persist" ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None);
  let w = Vtpm_util.Codec.writer () in
  Nvram.serialize nv w;
  let nv2 = Nvram.deserialize (Vtpm_util.Codec.reader (Vtpm_util.Codec.contents w)) in
  check_b "data preserved" true
    (Nvram.read nv2 ~index:7 ~offset:0 ~length:7 ~owner_authorized:false
       ~composite_now:composite_const ~expected_digest:None
    = Ok "persist")

(* --- Keystore ----------------------------------------------------------------- *)

let keygen_rng = lazy (Vtpm_util.Rng.create ~seed:71)

let make_material usage =
  {
    Keystore.usage;
    rsa = Vtpm_crypto.Rsa.generate ~bits:256 (Lazy.force keygen_rng);
    usage_auth = Vtpm_crypto.Sha1.digest "auth";
    migratable = false;
    pcr_bound = no_pcr;
    pcr_digest_at_creation = None;
  }

let test_keystore_wrap_unwrap () =
  let parent = make_material Types.Storage in
  let child = make_material Types.Signing in
  let blob = Keystore.wrap ~parent child in
  match Keystore.unwrap ~parent blob with
  | Ok m ->
      check_b "usage" true (m.Keystore.usage = Types.Signing);
      check_s "auth" child.Keystore.usage_auth m.Keystore.usage_auth;
      check_b "private key preserved" true
        (Vtpm_crypto.Bignum.equal m.Keystore.rsa.d child.Keystore.rsa.d)
  | Error rc -> Alcotest.failf "unwrap failed rc=0x%x" rc

let test_keystore_wrong_parent () =
  let parent = make_material Types.Storage in
  let other = make_material Types.Storage in
  let blob = Keystore.wrap ~parent (make_material Types.Signing) in
  check_b "wrong parent rejected" true (Result.is_error (Keystore.unwrap ~parent:other blob))

let test_keystore_blob_tamper () =
  let parent = make_material Types.Storage in
  let blob = Bytes.of_string (Keystore.wrap ~parent (make_material Types.Signing)) in
  Bytes.set blob 12 (Char.chr (Char.code (Bytes.get blob 12) lxor 0x40));
  check_b "tampered rejected" true
    (Keystore.unwrap ~parent (Bytes.to_string blob) = Error Types.tpm_authfail)

let test_keystore_context_separation () =
  let key = make_material Types.Storage in
  let blob = Keystore.protect ~key ~context:"ctx-a" ~nonce8:"12345678" "payload" in
  check_b "wrong context rejected" true
    (Result.is_error (Keystore.unprotect ~key ~context:"ctx-b" blob));
  check_b "right context ok" true (Keystore.unprotect ~key ~context:"ctx-a" blob = Ok "payload")

let test_keystore_capacity () =
  let ks = Keystore.create ~max_loaded:2 () in
  let m = make_material Types.Signing in
  check_b "first" true (Result.is_ok (Keystore.insert ks ~parent:0 m));
  check_b "second" true (Result.is_ok (Keystore.insert ks ~parent:0 m));
  check_b "third rejected" true (Keystore.insert ks ~parent:0 m = Error Types.tpm_resources);
  (match Keystore.insert ks ~parent:0 m with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected resource error");
  check_b "evict missing" true (Keystore.evict ks 0x999 = Error Types.tpm_keynotfound)

(* --- Engine + client flows ------------------------------------------------------- *)

let make_engine ?(seed = 7) () =
  let engine = Engine.create ~rsa_bits:256 ~seed () in
  let transport ~locality bytes =
    Wire.encode_response (Engine.execute engine ~locality (Wire.decode_request bytes))
  in
  (engine, transport)

let client_of transport = Client.create (transport ~locality:0)

let unwrap what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Client.pp_error e

let owned_client ?(seed = 7) () =
  let engine, transport = make_engine ~seed () in
  let c = client_of transport in
  unwrap "startup" (Client.startup c Types.St_clear);
  let owner_auth = Vtpm_crypto.Sha1.digest "owner" in
  let srk_auth = Vtpm_crypto.Sha1.digest "srk" in
  let _ = unwrap "takeown" (Client.take_ownership c ~owner_auth ~srk_auth) in
  (engine, transport, c, owner_auth, srk_auth)

let test_engine_get_capability () =
  let _, transport = make_engine () in
  let c = client_of transport in
  let resp =
    unwrap "cap"
      (Client.exchange c (Cmd.Get_capability { cap = Types.cap_property; sub = Types.cap_prop_pcr }))
  in
  (match resp.Cmd.body with
  | Cmd.R_capability s ->
      check_i "pcr count" Types.pcr_count
        (Vtpm_util.Codec.read_u32_int (Vtpm_util.Codec.reader s))
  | _ -> Alcotest.fail "bad body");
  check_b "unknown cap" true
    (Client.exchange c (Cmd.Get_capability { cap = 0x42; sub = 0 })
    = Error (Client.Tpm Types.tpm_bad_parameter))

let test_engine_get_random () =
  let _, transport = make_engine () in
  let c = client_of transport in
  let a = unwrap "rand" (Client.get_random c ~length:32) in
  let b = unwrap "rand" (Client.get_random c ~length:32) in
  check_i "len" 32 (String.length a);
  check_b "fresh" true (a <> b);
  check_b "zero rejected" true (Client.get_random c ~length:0 = Error (Client.Tpm Types.tpm_bad_parameter))

let test_engine_read_pubek_rules () =
  let _, transport = make_engine () in
  let c = client_of transport in
  let _ = unwrap "pubek before owner" (Client.read_pubek c) in
  let owner_auth = Vtpm_crypto.Sha1.digest "o" and srk_auth = Vtpm_crypto.Sha1.digest "s" in
  let _ = unwrap "takeown" (Client.take_ownership c ~owner_auth ~srk_auth) in
  check_b "pubek hidden after ownership" true
    (Client.read_pubek c = Error (Client.Tpm Types.tpm_no_endorsement))

let test_engine_double_ownership () =
  let _, _, c, _, _ = owned_client () in
  check_b "second takeown rejected" true
    (Client.take_ownership c ~owner_auth:"x" ~srk_auth:"y"
    = Error (Client.Tpm Types.tpm_owner_set))

let test_engine_key_hierarchy () =
  let _, _, c, _, srk_auth = owned_client () in
  let sess = unwrap "osap" (Client.start_osap c ~entity_handle:Types.kh_srk ~usage_secret:srk_auth) in
  let key_auth = Vtpm_crypto.Sha1.digest "ka" in
  let blob, pub =
    unwrap "create" (Client.create_wrap_key c sess ~parent:Types.kh_srk ~usage:Types.Signing ~key_auth ())
  in
  let handle = unwrap "load" (Client.load_key2 c sess ~parent:Types.kh_srk ~blob) in
  check_b "transient handle range" true (handle >= 0x01000000);
  let s2 = unwrap "oiap" (Client.start_oiap c ~usage_secret:key_auth) in
  let digest = Vtpm_crypto.Sha1.digest "doc" in
  let signature = unwrap "sign" (Client.sign c s2 ~key:handle ~digest) in
  check_b "verifies against returned pub" true
    (Vtpm_crypto.Rsa.verify pub ~digest ~signature)

let test_engine_sign_requires_signing_key () =
  let _, _, c, _, srk_auth = owned_client () in
  let sess = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  check_b "srk cannot sign" true
    (Client.sign c sess ~key:Types.kh_srk ~digest:(Vtpm_crypto.Sha1.digest "d")
    = Error (Client.Tpm Types.tpm_invalid_keyusage))

let test_engine_seal_requires_storage_key () =
  let _, _, c, _, srk_auth = owned_client () in
  let sess = unwrap "osap" (Client.start_osap c ~entity_handle:Types.kh_srk ~usage_secret:srk_auth) in
  let key_auth = Vtpm_crypto.Sha1.digest "ka" in
  let blob, _ =
    unwrap "create" (Client.create_wrap_key c sess ~parent:Types.kh_srk ~usage:Types.Signing ~key_auth ())
  in
  let handle = unwrap "load" (Client.load_key2 c sess ~parent:Types.kh_srk ~blob) in
  let s2 = unwrap "oiap" (Client.start_oiap c ~usage_secret:key_auth) in
  check_b "signing key cannot seal" true
    (Client.seal c s2 ~key:handle ~pcr_sel:no_pcr ~blob_auth:"b" ~data:"d"
    = Error (Client.Tpm Types.tpm_invalid_keyusage))

let test_engine_wrong_auth_rejected () =
  let _, _, c, _, _srk_auth = owned_client () in
  let bad = unwrap "oiap" (Client.start_oiap c ~usage_secret:(Vtpm_crypto.Sha1.digest "wrong")) in
  check_b "bad secret fails" true
    (Client.seal c bad ~key:Types.kh_srk ~pcr_sel:no_pcr ~blob_auth:"b" ~data:"d"
    = Error (Client.Tpm Types.tpm_authfail))

let test_engine_replay_rejected () =
  (* Capture the raw wire bytes of an authorized command and replay them:
     the rolling nonceEven must make the replay fail. *)
  let engine, _ = make_engine () in
  let captured = ref None in
  let transport bytes =
    (match Wire.peek_header bytes with
    | Some { Wire.ordinal; _ } when ordinal = Types.ord_seal -> captured := Some bytes
    | _ -> ());
    Wire.encode_response (Engine.execute engine ~locality:0 (Wire.decode_request bytes))
  in
  let c = Client.create transport in
  unwrap "startup" (Client.startup c Types.St_clear);
  let srk_auth = Vtpm_crypto.Sha1.digest "srk" in
  let _ = unwrap "takeown" (Client.take_ownership c ~owner_auth:"o" ~srk_auth) in
  let sess = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let _ = unwrap "seal" (Client.seal c sess ~key:Types.kh_srk ~pcr_sel:no_pcr ~blob_auth:"b" ~data:"d") in
  match !captured with
  | None -> Alcotest.fail "no seal captured"
  | Some bytes ->
      let resp = Engine.execute engine ~locality:0 (Wire.decode_request bytes) in
      check_i "replay fails authfail" Types.tpm_authfail resp.Cmd.rc

let test_engine_session_exhaustion_and_reuse () =
  let _, _, c, _, srk_auth = owned_client () in
  (* Engine default allows 8 concurrent sessions. *)
  let sessions = List.init 8 (fun _ -> unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth)) in
  check_b "9th rejected" true (Client.start_oiap c ~usage_secret:srk_auth = Error (Client.Tpm Types.tpm_resources));
  (* A one-shot op (continue=false) frees its session slot. *)
  let s = List.hd sessions in
  let _ = unwrap "seal" (Client.seal ~continue:false c s ~key:Types.kh_srk ~pcr_sel:no_pcr ~blob_auth:"b" ~data:"d") in
  let _ = unwrap "slot freed" (Client.start_oiap c ~usage_secret:srk_auth) in
  ()

let test_engine_seal_unseal_pcr_binding () =
  let _, _, c, _, srk_auth = owned_client () in
  let _ = unwrap "measure" (Client.measure c ~pcr:11 ~event:"boot") in
  let sel = Types.Pcr_selection.of_list [ 11 ] in
  let blob_auth = Vtpm_crypto.Sha1.digest "blob" in
  let s = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let sealed = unwrap "seal" (Client.seal c s ~key:Types.kh_srk ~pcr_sel:sel ~blob_auth ~data:"secret") in
  let ks = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let ds = unwrap "oiap" (Client.start_oiap c ~usage_secret:blob_auth) in
  check_s "unseal before change" "secret"
    (unwrap "unseal" (Client.unseal c ~key_session:ks ~data_session:ds ~key:Types.kh_srk ~blob:sealed));
  let _ = unwrap "measure2" (Client.measure c ~pcr:11 ~event:"tamper") in
  let ks = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let ds = unwrap "oiap" (Client.start_oiap c ~usage_secret:blob_auth) in
  check_b "unseal after change fails" true
    (Client.unseal c ~key_session:ks ~data_session:ds ~key:Types.kh_srk ~blob:sealed
    = Error (Client.Tpm Types.tpm_wrongpcrval))

let test_engine_unseal_wrong_blob_auth () =
  let _, _, c, _, srk_auth = owned_client () in
  let s = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let sealed =
    unwrap "seal"
      (Client.seal c s ~key:Types.kh_srk ~pcr_sel:no_pcr
         ~blob_auth:(Vtpm_crypto.Sha1.digest "right") ~data:"secret")
  in
  let ks = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let ds = unwrap "oiap" (Client.start_oiap c ~usage_secret:(Vtpm_crypto.Sha1.digest "wrong")) in
  check_b "wrong data auth" true
    (Client.unseal c ~key_session:ks ~data_session:ds ~key:Types.kh_srk ~blob:sealed
    = Error (Client.Tpm Types.tpm_authfail))

let test_engine_quote_verifies () =
  let _, _, c, _, srk_auth = owned_client () in
  let sess = unwrap "osap" (Client.start_osap c ~entity_handle:Types.kh_srk ~usage_secret:srk_auth) in
  let key_auth = Vtpm_crypto.Sha1.digest "aik" in
  let blob, _ = unwrap "create" (Client.create_wrap_key c sess ~parent:Types.kh_srk ~usage:Types.Signing ~key_auth ()) in
  let handle = unwrap "load" (Client.load_key2 c sess ~parent:Types.kh_srk ~blob) in
  let s2 = unwrap "oiap" (Client.start_oiap c ~usage_secret:key_auth) in
  let nonce = String.make 20 'n' in
  let sel = Types.Pcr_selection.of_list [ 0; 1 ] in
  let composite, signature, pub = unwrap "quote" (Client.quote c s2 ~key:handle ~external_data:nonce ~pcr_sel:sel) in
  check_b "verifies" true (Engine.verify_quote ~pubkey:pub ~composite ~external_data:nonce ~signature);
  check_b "nonce binds" false
    (Engine.verify_quote ~pubkey:pub ~composite ~external_data:(String.make 20 'x') ~signature);
  check_b "composite binds" false
    (Engine.verify_quote ~pubkey:pub ~composite:(String.make 20 'c') ~external_data:nonce ~signature)

let test_engine_quote_bad_nonce_size () =
  (* The wire codec fixes the nonce width, so an undersized nonce can only
     reach the engine through the structured interface. *)
  let engine, _ = make_engine () in
  let req =
    Cmd.Quote
      {
        key = Types.kh_srk;
        external_data = String.make 19 'n';
        pcr_sel = no_pcr;
        auth = { Auth.handle = 0; nonce_odd = ""; continue = false; hmac = "" };
      }
  in
  let resp = Engine.execute engine ~locality:0 req in
  check_i "19-byte nonce rejected" Types.tpm_bad_parameter resp.Cmd.rc

let test_engine_counters () =
  let _, _, c, owner_auth, _ = owned_client () in
  let osess = unwrap "oiap" (Client.start_oiap c ~usage_secret:owner_auth) in
  let counter_auth = Vtpm_crypto.Sha1.digest "ctr" in
  let resp =
    unwrap "create"
      (Client.authorized c osess ~make_req:(fun auth ->
           Cmd.Create_counter { label = "boot"; counter_auth; auth }))
  in
  let handle =
    match resp.Cmd.body with
    | Cmd.R_counter { handle; value; _ } ->
        check_i "starts at zero" 0 value;
        handle
    | _ -> Alcotest.fail "bad body"
  in
  let csess = unwrap "oiap" (Client.start_oiap c ~usage_secret:counter_auth) in
  let resp = unwrap "inc" (Client.authorized c csess ~make_req:(fun auth -> Cmd.Increment_counter { handle; auth })) in
  (match resp.Cmd.body with
  | Cmd.R_counter { value; _ } -> check_i "incremented" 1 value
  | _ -> Alcotest.fail "bad body");
  let resp = unwrap "read" (Client.exchange c (Cmd.Read_counter { handle })) in
  (match resp.Cmd.body with
  | Cmd.R_counter { value; label; _ } ->
      check_i "read back" 1 value;
      check_s "label" "boot" label
  | _ -> Alcotest.fail "bad body");
  check_b "bad handle" true
    (Client.exchange c (Cmd.Read_counter { handle = 0x9999 }) = Error (Client.Tpm Types.tpm_bad_counter))

let test_engine_owner_clear () =
  let _, _, c, owner_auth, srk_auth = owned_client () in
  let osess = unwrap "oiap" (Client.start_oiap c ~usage_secret:owner_auth) in
  let _ = unwrap "clear" (Client.authorized c osess ~make_req:(fun auth -> Cmd.Owner_clear { auth })) in
  (* After clear: no SRK. *)
  check_b "srk gone" true
    (match Client.start_oiap c ~usage_secret:srk_auth with
    | Ok s -> Client.seal c s ~key:Types.kh_srk ~pcr_sel:no_pcr ~blob_auth:"b" ~data:"d" = Error (Client.Tpm Types.tpm_nosrk)
    | Error _ -> false)

let test_engine_force_clear_locality () =
  let engine, transport = make_engine () in
  let c0 = client_of transport in
  unwrap "startup" (Client.startup c0 Types.St_clear);
  let _ = unwrap "takeown" (Client.take_ownership c0 ~owner_auth:"o" ~srk_auth:"s") in
  let resp = Engine.execute engine ~locality:0 Cmd.Force_clear in
  check_i "locality 0 rejected" Types.tpm_bad_locality resp.Cmd.rc;
  let resp = Engine.execute engine ~locality:4 Cmd.Force_clear in
  check_i "locality 4 ok" Types.tpm_success resp.Cmd.rc;
  check_b "owner gone" false (Engine.has_owner engine)

let test_engine_state_roundtrip () =
  let engine, _, c, _owner_auth, srk_auth = owned_client () in
  let _ = unwrap "measure" (Client.measure c ~pcr:5 ~event:"ev") in
  let s = unwrap "oiap" (Client.start_oiap c ~usage_secret:srk_auth) in
  let sealed = unwrap "seal" (Client.seal c s ~key:Types.kh_srk ~pcr_sel:no_pcr ~blob_auth:(Vtpm_crypto.Sha1.digest "b") ~data:"keepme") in
  let state = Engine.serialize_state engine in
  match Engine.deserialize_state state with
  | Error m -> Alcotest.fail m
  | Ok e2 ->
      let t2 bytes = Wire.encode_response (Engine.execute e2 ~locality:0 (Wire.decode_request bytes)) in
      let c2 = Client.create t2 in
      check_s "pcr preserved"
        (unwrap "read" (Client.pcr_read c ~pcr:5))
        (unwrap "read2" (Client.pcr_read c2 ~pcr:5));
      (* Sealed data made before the save unseals after restore. *)
      let ks = unwrap "oiap" (Client.start_oiap c2 ~usage_secret:srk_auth) in
      let ds = unwrap "oiap" (Client.start_oiap c2 ~usage_secret:(Vtpm_crypto.Sha1.digest "b")) in
      check_s "unseal after restore" "keepme"
        (unwrap "unseal" (Client.unseal c2 ~key_session:ks ~data_session:ds ~key:Types.kh_srk ~blob:sealed))

let test_engine_state_truncated () =
  let engine, _ = make_engine () in
  let state = Engine.serialize_state engine in
  check_b "truncated rejected" true
    (Result.is_error (Engine.deserialize_state (String.sub state 0 (String.length state / 2))))

let test_engine_deterministic_by_seed () =
  let e1 = Engine.create ~rsa_bits:256 ~seed:5 () in
  let e2 = Engine.create ~rsa_bits:256 ~seed:5 () in
  check_b "same EK for same seed" true
    (Vtpm_crypto.Bignum.equal e1.Engine.ek.Keystore.rsa.pub.n e2.Engine.ek.Keystore.rsa.pub.n);
  let e3 = Engine.create ~rsa_bits:256 ~seed:6 () in
  check_b "different seed different EK" false
    (Vtpm_crypto.Bignum.equal e1.Engine.ek.Keystore.rsa.pub.n e3.Engine.ek.Keystore.rsa.pub.n)

(* --- Wire codec -------------------------------------------------------------------- *)

let dummy_proof =
  { Auth.handle = 0x02000001; nonce_odd = String.make 20 'o'; continue = true; hmac = String.make 20 'h' }

let sample_requests : Cmd.request list =
  [
    Cmd.Startup Types.St_clear;
    Cmd.Self_test_full;
    Cmd.Get_capability { cap = 5; sub = 0x101 };
    Cmd.Extend { pcr = 3; digest = String.make 20 'd' };
    Cmd.Pcr_read { pcr = 22 };
    Cmd.Pcr_reset { pcr = 16 };
    Cmd.Get_random { length = 64 };
    Cmd.Stir_random { data = "entropy" };
    Cmd.Oiap;
    Cmd.Osap { entity_handle = Types.kh_srk; nonce_odd_osap = String.make 20 'n' };
    Cmd.Take_ownership { owner_auth = "oa"; srk_auth = "sa" };
    Cmd.Owner_clear { auth = dummy_proof };
    Cmd.Force_clear;
    Cmd.Read_pubek;
    Cmd.Create_wrap_key
      {
        parent = Types.kh_srk;
        usage = Types.Signing;
        key_auth = "ka";
        migratable = true;
        pcr_bound = Types.Pcr_selection.of_list [ 1; 2 ];
        auth = dummy_proof;
      };
    Cmd.Load_key2 { parent = Types.kh_srk; blob = "blobbytes"; auth = dummy_proof };
    Cmd.Flush_specific { handle = 0x01000004 };
    Cmd.Seal
      {
        key = Types.kh_srk;
        pcr_sel = Types.Pcr_selection.of_list [ 10 ];
        blob_auth = "ba";
        data = "payload";
        auth = dummy_proof;
      };
    Cmd.Unseal { key = Types.kh_srk; blob = "sealed"; key_auth = dummy_proof; data_auth = dummy_proof };
    Cmd.Sign { key = 0x01000001; digest = "dg"; auth = dummy_proof };
    Cmd.Quote
      {
        key = 0x01000001;
        external_data = String.make 20 'e';
        pcr_sel = Types.Pcr_selection.of_list [ 0; 23 ];
        auth = dummy_proof;
      };
    Cmd.Nv_define_space { index = 0x1500; size = 64; attrs = Types.nv_attrs_default; auth = None };
    Cmd.Nv_define_space
      {
        index = 0x1501;
        size = 32;
        attrs = { Types.nv_attrs_default with Types.nv_owner_read = true };
        auth = Some dummy_proof;
      };
    Cmd.Nv_write_value { index = 0x1500; offset = 4; data = "nvdata"; auth = None };
    Cmd.Nv_read_value { index = 0x1500; offset = 4; length = 6; auth = Some dummy_proof };
    Cmd.Create_counter { label = "lbl1"; counter_auth = "ca"; auth = dummy_proof };
    Cmd.Increment_counter { handle = 0x03000000; auth = dummy_proof };
    Cmd.Read_counter { handle = 0x03000000 };
    Cmd.Release_counter { handle = 0x03000000; auth = dummy_proof };
    Cmd.Save_state;
  ]

let test_wire_request_roundtrip () =
  List.iter
    (fun req ->
      let bytes = Wire.encode_request req in
      let back = Wire.decode_request bytes in
      check_b (Types.ordinal_name (Cmd.ordinal req)) true (back = req))
    sample_requests

let test_wire_request_covers_all_ordinals () =
  let covered = List.sort_uniq Stdlib.compare (List.map Cmd.ordinal sample_requests) in
  check_i "every implemented ordinal has a roundtrip case"
    (List.length Types.all_ordinals) (List.length covered)

let test_wire_header_peek () =
  let bytes = Wire.encode_request (Cmd.Pcr_read { pcr = 7 }) in
  match Wire.peek_header bytes with
  | Some { Wire.tag; size; ordinal } ->
      check_i "tag" Types.tag_rqu_command tag;
      check_i "size" (String.length bytes) size;
      check_i "ordinal" Types.ord_pcr_read ordinal
  | None -> Alcotest.fail "no header"

let test_wire_malformed () =
  (try
     ignore (Wire.decode_request "\x00\xc1\x00\x00\x00\x0a\x00\x00\x00");
     Alcotest.fail "short frame accepted"
   with Wire.Malformed _ -> ());
  let bytes = Wire.encode_request Cmd.Oiap ^ "junk" in
  (try
     ignore (Wire.decode_request bytes);
     Alcotest.fail "size mismatch accepted"
   with Wire.Malformed _ -> ());
  (* Corrupt the tag. *)
  let b = Bytes.of_string (Wire.encode_request Cmd.Oiap) in
  Bytes.set b 0 '\xff';
  (try
     ignore (Wire.decode_request (Bytes.to_string b));
     Alcotest.fail "bad tag accepted"
   with Wire.Malformed _ -> ())

let rsa_key_for_wire = lazy (Vtpm_crypto.Rsa.generate ~bits:256 (Vtpm_util.Rng.create ~seed:53))

let test_wire_response_roundtrip () =
  let pub = (Lazy.force rsa_key_for_wire).Vtpm_crypto.Rsa.pub in
  let bodies =
    [
      Cmd.R_ok;
      Cmd.R_capability "cap";
      Cmd.R_extend { new_value = String.make 20 'v' };
      Cmd.R_pcr_value (String.make 20 'p');
      Cmd.R_random "rnd";
      Cmd.R_session { handle = 7; nonce_even = String.make 20 'n'; nonce_even_osap = None };
      Cmd.R_session
        { handle = 8; nonce_even = String.make 20 'n'; nonce_even_osap = Some (String.make 20 'm') };
      Cmd.R_pubkey pub;
      Cmd.R_key_blob { blob = "blob"; pubkey = pub };
      Cmd.R_key_handle 0x01000009;
      Cmd.R_sealed "sealed";
      Cmd.R_unsealed "plain";
      Cmd.R_signature "sig";
      Cmd.R_quote { composite = String.make 20 'c'; signature = "sg"; sig_pubkey = pub };
      Cmd.R_nv_data "nv";
      Cmd.R_counter { handle = 3; label = "lbl"; value = 42 };
      Cmd.R_saved_state "state";
    ]
  in
  List.iter
    (fun body ->
      List.iter
        (fun nonce_even ->
          let resp = { Cmd.rc = Types.tpm_success; body; nonce_even } in
          let back = Wire.decode_response (Wire.encode_response resp) in
          check_b "roundtrip" true (back = resp))
        [ None; Some (String.make 20 'e') ])
    bodies;
  (* Error responses *)
  let err = Cmd.error Types.tpm_authfail in
  check_b "error roundtrip" true (Wire.decode_response (Wire.encode_response err) = err)

let test_param_digest_excludes_auth () =
  (* The auth trailer must not feed the param digest, or HMACs could never
     be computed. *)
  let p1 = dummy_proof in
  let p2 = { dummy_proof with Auth.nonce_odd = String.make 20 'z' } in
  let d1 = Cmd.param_digest (Cmd.Sign { key = 1; digest = "d"; auth = p1 }) in
  let d2 = Cmd.param_digest (Cmd.Sign { key = 1; digest = "d"; auth = p2 }) in
  check_s "auth independent" (Vtpm_util.Hex.encode d1) (Vtpm_util.Hex.encode d2);
  let d3 = Cmd.param_digest (Cmd.Sign { key = 2; digest = "d"; auth = p1 }) in
  check_b "params dependent" true (d1 <> d3)

(* --- Wire fuzzing ------------------------------------------------------------------ *)

(* Generator over a representative slice of the request space. *)
let gen_request : Cmd.request QCheck.Gen.t =
  let open QCheck.Gen in
  let gen_digest = map (fun s -> Vtpm_crypto.Sha1.digest s) string in
  let gen_proof =
    map2
      (fun h nonce ->
        { Auth.handle = 0x02000000 + (h land 0xff); nonce_odd = Vtpm_crypto.Sha1.digest nonce;
          continue = h land 1 = 0; hmac = Vtpm_crypto.Sha1.digest (nonce ^ "h") })
      int string
  in
  let gen_sel =
    map (fun l -> Types.Pcr_selection.of_list (List.map (fun i -> i mod Types.pcr_count) l))
      (list_size (int_bound 5) (int_bound 100))
  in
  oneof
    [
      map (fun p -> Cmd.Pcr_read { pcr = abs p mod 64 }) int;
      map2 (fun p d -> Cmd.Extend { pcr = abs p mod 64; digest = d }) int gen_digest;
      map (fun n -> Cmd.Get_random { length = n land 0xffff }) int;
      map (fun d -> Cmd.Stir_random { data = d }) string;
      map2 (fun h d -> Cmd.Osap { entity_handle = h land 0xffffff; nonce_odd_osap = d }) int gen_digest;
      map2 (fun a b -> Cmd.Take_ownership { owner_auth = a; srk_auth = b }) string string;
      map3
        (fun blob sel proof -> Cmd.Seal { key = Types.kh_srk; pcr_sel = sel; blob_auth = "ba"; data = blob; auth = proof })
        string gen_sel gen_proof;
      map2 (fun blob proof -> Cmd.Load_key2 { parent = Types.kh_srk; blob; auth = proof }) string gen_proof;
      map3
        (fun d sel proof -> Cmd.Quote { key = 0x01000001; external_data = d; pcr_sel = sel; auth = proof })
        gen_digest gen_sel gen_proof;
      map2
        (fun i d -> Cmd.Nv_write_value { index = i land 0xffff; offset = 0; data = d; auth = None })
        int string;
    ]

let prop_wire_roundtrip_fuzz =
  QCheck.Test.make ~name:"wire request roundtrip (fuzz)" ~count:500 (QCheck.make gen_request)
    (fun req -> Wire.decode_request (Wire.encode_request req) = req)

let prop_wire_header_consistent =
  QCheck.Test.make ~name:"peek_header agrees with decode" ~count:300 (QCheck.make gen_request)
    (fun req ->
      let bytes = Wire.encode_request req in
      match Wire.peek_header bytes with
      | Some { Wire.ordinal; size; _ } -> ordinal = Cmd.ordinal req && size = String.length bytes
      | None -> false)

let prop_wire_decode_never_crashes =
  (* Arbitrary bytes either decode or raise Malformed — never anything
     else, and never a crash. *)
  QCheck.Test.make ~name:"decode of random bytes is total" ~count:1000 QCheck.string (fun s ->
      match Wire.decode_request s with
      | _ -> true
      | exception Wire.Malformed _ -> true
      | exception _ -> false)

let prop_wire_truncation_rejected =
  QCheck.Test.make ~name:"truncated frames rejected" ~count:300
    (QCheck.pair (QCheck.make gen_request) (QCheck.int_range 1 10))
    (fun (req, cut) ->
      let bytes = Wire.encode_request req in
      let n = String.length bytes in
      if cut >= n then true
      else
        match Wire.decode_request (String.sub bytes 0 (n - cut)) with
        | _ -> false (* size field must catch it *)
        | exception Wire.Malformed _ -> true)

(* --- Event log --------------------------------------------------------------------- *)

let test_eventlog_replay_matches_tpm () =
  (* Extending the TPM with exactly the logged digests must make the log's
     replay reproduce the live PCR values. *)
  let engine, transport = make_engine () in
  let c = client_of transport in
  let log = Eventlog.create () in
  List.iteri
    (fun i data ->
      let digest = Eventlog.record log ~pcr:(10 + (i mod 2)) ~event_type:Eventlog.ev_ipl
          ~description:(Printf.sprintf "module-%d" i) ~data in
      ignore (unwrap "extend" (Client.extend c ~pcr:(10 + (i mod 2)) ~digest)))
    [ "kernel"; "initrd"; "cmdline"; "app" ];
  ignore engine;
  check_s "pcr10 replayed" (unwrap "read" (Client.pcr_read c ~pcr:10)) (Eventlog.expected_pcr log ~pcr:10);
  check_s "pcr11 replayed" (unwrap "read" (Client.pcr_read c ~pcr:11)) (Eventlog.expected_pcr log ~pcr:11);
  let sel = Types.Pcr_selection.of_list [ 10; 11 ] in
  check_s "composite replayed"
    (Vtpm_util.Hex.encode (Engine.composite_now engine sel))
    (Vtpm_util.Hex.encode (Eventlog.expected_composite log sel))

let test_eventlog_order_sensitive () =
  let l1 = Eventlog.create () and l2 = Eventlog.create () in
  ignore (Eventlog.record l1 ~pcr:0 ~event_type:0 ~description:"a" ~data:"a");
  ignore (Eventlog.record l1 ~pcr:0 ~event_type:0 ~description:"b" ~data:"b");
  ignore (Eventlog.record l2 ~pcr:0 ~event_type:0 ~description:"b" ~data:"b");
  ignore (Eventlog.record l2 ~pcr:0 ~event_type:0 ~description:"a" ~data:"a");
  check_b "order matters" true (Eventlog.expected_pcr l1 ~pcr:0 <> Eventlog.expected_pcr l2 ~pcr:0)

let test_eventlog_serialization () =
  let log = Eventlog.create () in
  ignore (Eventlog.record log ~pcr:3 ~event_type:Eventlog.ev_action ~description:"boot" ~data:"x");
  ignore (Eventlog.record log ~pcr:7 ~event_type:Eventlog.ev_separator ~description:"" ~data:"");
  match Eventlog.deserialize (Eventlog.serialize log) with
  | Ok log2 ->
      check_i "length" 2 (Eventlog.length log2);
      check_b "events preserved" true (Eventlog.events log = Eventlog.events log2);
      check_s "replay equal"
        (Eventlog.expected_pcr log ~pcr:3)
        (Eventlog.expected_pcr log2 ~pcr:3)
  | Error m -> Alcotest.fail m

let test_eventlog_deserialize_garbage () =
  check_b "garbage rejected" true (Result.is_error (Eventlog.deserialize "oops"));
  let good = Eventlog.serialize (Eventlog.create ()) in
  check_b "trailing rejected" true (Result.is_error (Eventlog.deserialize (good ^ "x")))

let test_eventlog_bad_digest_size () =
  let log = Eventlog.create () in
  Alcotest.check_raises "short digest"
    (Invalid_argument "Eventlog.record_digest: digest must be 20 bytes") (fun () ->
      Eventlog.record_digest log ~pcr:0 ~event_type:0 ~description:"" ~digest:"short")

let suite =
  [
    Alcotest.test_case "pcr initial values" `Quick test_pcr_initial_values;
    Alcotest.test_case "pcr extend algebra" `Quick test_pcr_extend_algebra;
    Alcotest.test_case "pcr extend order" `Quick test_pcr_extend_order_matters;
    Alcotest.test_case "pcr bad index" `Quick test_pcr_bad_index;
    Alcotest.test_case "pcr bad measurement size" `Quick test_pcr_bad_measurement_size;
    Alcotest.test_case "pcr reset rules" `Quick test_pcr_reset_rules;
    Alcotest.test_case "pcr drtm locality" `Quick test_pcr_drtm_extend_locality;
    Alcotest.test_case "pcr composite" `Quick test_pcr_composite_stability;
    Alcotest.test_case "pcr selection bitmap" `Quick test_pcr_selection_bitmap;
    Alcotest.test_case "pcr serialization" `Quick test_pcr_serialization;
    Alcotest.test_case "nv define/write/read" `Quick test_nv_define_write_read;
    Alcotest.test_case "nv double define" `Quick test_nv_double_define;
    Alcotest.test_case "nv budget" `Quick test_nv_budget;
    Alcotest.test_case "nv bounds" `Quick test_nv_bounds;
    Alcotest.test_case "nv write once" `Quick test_nv_write_once;
    Alcotest.test_case "nv owner gate" `Quick test_nv_owner_gate;
    Alcotest.test_case "nv serialization" `Quick test_nv_serialization;
    Alcotest.test_case "keystore wrap/unwrap" `Quick test_keystore_wrap_unwrap;
    Alcotest.test_case "keystore wrong parent" `Quick test_keystore_wrong_parent;
    Alcotest.test_case "keystore blob tamper" `Quick test_keystore_blob_tamper;
    Alcotest.test_case "keystore context separation" `Quick test_keystore_context_separation;
    Alcotest.test_case "keystore capacity" `Quick test_keystore_capacity;
    Alcotest.test_case "engine get capability" `Quick test_engine_get_capability;
    Alcotest.test_case "engine get random" `Quick test_engine_get_random;
    Alcotest.test_case "engine read pubek rules" `Quick test_engine_read_pubek_rules;
    Alcotest.test_case "engine double ownership" `Quick test_engine_double_ownership;
    Alcotest.test_case "engine key hierarchy" `Quick test_engine_key_hierarchy;
    Alcotest.test_case "engine sign needs signing key" `Quick test_engine_sign_requires_signing_key;
    Alcotest.test_case "engine seal needs storage key" `Quick test_engine_seal_requires_storage_key;
    Alcotest.test_case "engine wrong auth" `Quick test_engine_wrong_auth_rejected;
    Alcotest.test_case "engine replay rejected" `Quick test_engine_replay_rejected;
    Alcotest.test_case "engine session exhaustion" `Quick test_engine_session_exhaustion_and_reuse;
    Alcotest.test_case "engine seal/unseal pcr binding" `Quick test_engine_seal_unseal_pcr_binding;
    Alcotest.test_case "engine unseal wrong blob auth" `Quick test_engine_unseal_wrong_blob_auth;
    Alcotest.test_case "engine quote verifies" `Quick test_engine_quote_verifies;
    Alcotest.test_case "engine quote bad nonce" `Quick test_engine_quote_bad_nonce_size;
    Alcotest.test_case "engine counters" `Quick test_engine_counters;
    Alcotest.test_case "engine owner clear" `Quick test_engine_owner_clear;
    Alcotest.test_case "engine force clear locality" `Quick test_engine_force_clear_locality;
    Alcotest.test_case "engine state roundtrip" `Quick test_engine_state_roundtrip;
    Alcotest.test_case "engine state truncated" `Quick test_engine_state_truncated;
    Alcotest.test_case "engine deterministic seed" `Quick test_engine_deterministic_by_seed;
    Alcotest.test_case "wire request roundtrip" `Quick test_wire_request_roundtrip;
    Alcotest.test_case "wire covers all ordinals" `Quick test_wire_request_covers_all_ordinals;
    Alcotest.test_case "wire header peek" `Quick test_wire_header_peek;
    Alcotest.test_case "wire malformed" `Quick test_wire_malformed;
    Alcotest.test_case "wire response roundtrip" `Quick test_wire_response_roundtrip;
    Alcotest.test_case "param digest excludes auth" `Quick test_param_digest_excludes_auth;
    Alcotest.test_case "eventlog replay matches tpm" `Quick test_eventlog_replay_matches_tpm;
    Alcotest.test_case "eventlog order sensitive" `Quick test_eventlog_order_sensitive;
    Alcotest.test_case "eventlog serialization" `Quick test_eventlog_serialization;
    Alcotest.test_case "eventlog garbage" `Quick test_eventlog_deserialize_garbage;
    Alcotest.test_case "eventlog bad digest" `Quick test_eventlog_bad_digest_size;
    QCheck_alcotest.to_alcotest prop_wire_roundtrip_fuzz;
    QCheck_alcotest.to_alcotest prop_wire_header_consistent;
    QCheck_alcotest.to_alcotest prop_wire_decode_never_crashes;
    QCheck_alcotest.to_alcotest prop_wire_truncation_rejected;
  ]
