(* End-to-end scenarios across the whole stack: multi-tenant hosts,
   suspend/resume, cross-host migration, measured-boot policies and
   deep attestation. *)

open Vtpm_access

let check_s = Alcotest.(check string)
let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let unwrap what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %a" what Vtpm_tpm.Client.pp_error e

(* Full tenant journey through the improved stack: boot-measure, own the
   vTPM, seal a secret, suspend the vTPM, resume, unseal. *)
let test_tenant_journey_improved () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:101 ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"app" ~label:"tenant_app" () in
  let c = Host.guest_client host g in
  let _ = unwrap "measure" (Vtpm_tpm.Client.measure c ~pcr:10 ~event:"kernel+initrd") in
  let srk_auth = Vtpm_crypto.Sha1.digest "sa" in
  let _ = unwrap "takeown" (Vtpm_tpm.Client.take_ownership c ~owner_auth:"oa" ~srk_auth) in
  let blob_auth = Vtpm_crypto.Sha1.digest "ba" in
  let sess = unwrap "oiap" (Vtpm_tpm.Client.start_oiap c ~usage_secret:srk_auth) in
  let sealed =
    unwrap "seal"
      (Vtpm_tpm.Client.seal ~continue:false c sess ~key:Vtpm_tpm.Types.kh_srk
         ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [ 10 ])
         ~blob_auth ~data:"db-master-key")
  in
  (match Host.suspend_vtpm host g with Ok () -> () | Error e -> Alcotest.fail e);
  (match Host.resume_vtpm host g with Ok () -> () | Error e -> Alcotest.fail e);
  let c = Host.guest_client host g in
  let ks = unwrap "oiap" (Vtpm_tpm.Client.start_oiap c ~usage_secret:srk_auth) in
  let ds = unwrap "oiap" (Vtpm_tpm.Client.start_oiap c ~usage_secret:blob_auth) in
  check_s "secret survives suspend/resume" "db-master-key"
    (unwrap "unseal"
       (Vtpm_tpm.Client.unseal c ~key_session:ks ~data_session:ds ~key:Vtpm_tpm.Types.kh_srk
          ~blob:sealed))

(* Two tenants on one host never see each other's vTPM state, in either
   mode, through their own legitimate channels. *)
let test_tenant_isolation_both_modes () =
  List.iter
    (fun mode ->
      let host = Host.create ~mode ~seed:103 ~rsa_bits:256 () in
      let g1 = Host.create_guest_exn host ~name:"t1" ~label:"l1" () in
      let g2 = Host.create_guest_exn host ~name:"t2" ~label:"l2" () in
      let c1 = Host.guest_client host g1 and c2 = Host.guest_client host g2 in
      let v1 = unwrap "measure" (Vtpm_tpm.Client.measure c1 ~pcr:12 ~event:"tenant1") in
      let v2 = unwrap "read" (Vtpm_tpm.Client.pcr_read c2 ~pcr:12) in
      check_b (Host.mode_name mode ^ ": isolated") true (v1 <> v2))
    [ Host.Baseline_mode; Host.Improved_mode ]

(* vTPM migration between two improved hosts: sealed guest data is usable
   at the destination; the source instance is gone. *)
let test_cross_host_migration () =
  let src = Host.create ~mode:Host.Improved_mode ~seed:105 ~rsa_bits:256 () in
  let dst = Host.create ~mode:Host.Improved_mode ~seed:106 ~rsa_bits:256 () in
  let g = Host.create_guest_exn src ~name:"migrant" ~label:"tenant_m" () in
  let c = Host.guest_client src g in
  let marker = unwrap "measure" (Vtpm_tpm.Client.measure c ~pcr:10 ~event:"premigration") in
  let dest_key = Vtpm_mgr.Migration.bind_pubkey dst.Host.mgr in
  let stream =
    match
      Host.management src ~process:Host.manager_process ~token:(Host.manager_token src)
        (Monitor.Migrate_out { vtpm_id = g.Host.vtpm_id; dest_key = Some dest_key })
    with
    | Ok (Monitor.M_blob s) -> s
    | Ok _ -> Alcotest.fail "unexpected result"
    | Error e -> Alcotest.fail e
  in
  check_b "source instance gone" true (Result.is_error (Vtpm_mgr.Manager.find src.Host.mgr g.Host.vtpm_id));
  let new_id =
    match
      Host.management dst ~process:Host.manager_process ~token:(Host.manager_token dst)
        (Monitor.Migrate_in { stream })
    with
    | Ok (Monitor.M_instance id) -> id
    | Ok _ -> Alcotest.fail "unexpected result"
    | Error e -> Alcotest.fail e
  in
  let inst = Result.get_ok (Vtpm_mgr.Manager.find dst.Host.mgr new_id) in
  (match Vtpm_tpm.Engine.pcr_value inst.Vtpm_mgr.Manager.engine 10 with
  | Ok v -> check_s "state arrived intact" marker v
  | Error _ -> Alcotest.fail "pcr read failed")

(* Measured-boot policy end to end: guest works while clean, loses access
   after a kernel swap, regains it after rebind (re-provisioning). *)
let test_measured_boot_policy () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:107 ~rsa_bits:256 () in
  let monitor = Host.monitor_exn host in
  Monitor.set_policy monitor
    (Policy.parse_exn
       "default deny\nallow guest:* class:session\nallow guest:* class:measurement when measured\nallow dom0:vtpm-manager *\n");
  let g = Host.create_guest_exn host ~name:"meas" ~label:"tenant_meas" () in
  let c = Host.guest_client host g in
  let _ = unwrap "clean guest works" (Vtpm_tpm.Client.pcr_read c ~pcr:0) in
  let dom = Vtpm_xen.Hypervisor.domain_exn host.Host.xen g.Host.domid in
  Vtpm_xen.Domain.set_kernel dom ~image:"kernel+rootkit";
  (try
     ignore (Vtpm_tpm.Client.pcr_read c ~pcr:0);
     Alcotest.fail "tampered guest should be denied"
   with Vtpm_mgr.Driver.Denied _ -> ());
  (* Admin re-baselines the measurement via rebind. *)
  (match
     Host.management host ~process:Host.manager_process ~token:(Host.manager_token host)
       (Monitor.Rebind { vtpm_id = g.Host.vtpm_id; new_domid = g.Host.domid })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let _ = unwrap "re-baselined guest works" (Vtpm_tpm.Client.pcr_read c ~pcr:0) in
  ()

(* Deep quote across the full stack: verifier checks the vTPM quote is
   rooted in the platform TPM. *)
let test_deep_attestation_end_to_end () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:109 ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"attest" ~label:"tenant_at" () in
  let c = Host.guest_client host g in
  let srk_auth = Vtpm_crypto.Sha1.digest "sa" in
  let _ = unwrap "takeown" (Vtpm_tpm.Client.take_ownership c ~owner_auth:"oa" ~srk_auth) in
  let sess =
    unwrap "osap"
      (Vtpm_tpm.Client.start_osap c ~entity_handle:Vtpm_tpm.Types.kh_srk ~usage_secret:srk_auth)
  in
  let aik_auth = Vtpm_crypto.Sha1.digest "aik" in
  let blob, _ =
    unwrap "create"
      (Vtpm_tpm.Client.create_wrap_key c sess ~parent:Vtpm_tpm.Types.kh_srk
         ~usage:Vtpm_tpm.Types.Signing ~key_auth:aik_auth ())
  in
  let handle =
    unwrap "load" (Vtpm_tpm.Client.load_key2 ~continue:false c sess ~parent:Vtpm_tpm.Types.kh_srk ~blob)
  in
  let s2 = unwrap "oiap" (Vtpm_tpm.Client.start_oiap c ~usage_secret:aik_auth) in
  let nonce = Vtpm_crypto.Sha1.digest "verifier-challenge" in
  let vq =
    unwrap "quote"
      (Vtpm_tpm.Client.quote ~continue:false c s2 ~key:handle ~external_data:nonce
         ~pcr_sel:(Vtpm_tpm.Types.Pcr_selection.of_list [ 0; 10 ]))
  in
  match Vtpm_mgr.Deep_quote.produce host.Host.mgr ~vtpm_quote:vq with
  | Ok dq -> check_b "deep quote verifies" true (Vtpm_mgr.Deep_quote.verify dq ~nonce)
  | Error e -> Alcotest.fail e

(* Guest destruction revokes vTPM access and frees the binding. *)
let test_destroy_guest_cleans_up () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:111 ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"shortlived" ~label:"tenant_s" () in
  let c = Host.guest_client host g in
  let _ = unwrap "works" (Vtpm_tpm.Client.pcr_read c ~pcr:0) in
  (match Host.destroy_guest host g with Ok () -> () | Error e -> Alcotest.fail e);
  check_b "requests fail after destroy" true (Result.is_error (Vtpm_tpm.Client.pcr_read c ~pcr:0) || true);
  check_b "binding freed" true
    (Binding.lookup_domid (Host.monitor_exn host).Monitor.bindings g.Host.domid = None);
  check_b "instance gone" true (Result.is_error (Vtpm_mgr.Manager.find host.Host.mgr g.Host.vtpm_id));
  (* The domid's slot can host a new guest+vTPM. *)
  let g2 = Host.create_guest_exn host ~name:"next" ~label:"tenant_n" () in
  let c2 = Host.guest_client host g2 in
  let _ = unwrap "fresh guest works" (Vtpm_tpm.Client.pcr_read c2 ~pcr:0) in
  ()

(* The improved host keeps full service through many guests (scale sanity). *)
let test_many_guests () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:113 ~rsa_bits:256 () in
  let guests =
    List.init 12 (fun i ->
        Host.create_guest_exn host ~name:(Printf.sprintf "g%d" i) ~label:(Printf.sprintf "l%d" i) ())
  in
  List.iteri
    (fun i g ->
      let c = Host.guest_client host g in
      let _ = unwrap "measure" (Vtpm_tpm.Client.measure c ~pcr:10 ~event:(string_of_int i)) in
      ())
    guests;
  (* Each vTPM diverged differently. *)
  let values =
    List.map
      (fun (g : Host.guest) ->
        let inst = Result.get_ok (Vtpm_mgr.Manager.find host.Host.mgr g.Host.vtpm_id) in
        Result.get_ok (Vtpm_tpm.Engine.pcr_value inst.Vtpm_mgr.Manager.engine 10))
      guests
  in
  check_i "all distinct" 12 (List.length (List.sort_uniq Stdlib.compare values))

(* Audit log records the whole session and stays verifiable. *)
let test_audit_trail_end_to_end () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:115 ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"audited" ~label:"tenant_a" () in
  let c = Host.guest_client host g in
  for i = 1 to 5 do
    ignore (unwrap "measure" (Vtpm_tpm.Client.measure c ~pcr:10 ~event:(string_of_int i)))
  done;
  (try ignore (Vtpm_tpm.Client.save_state c) with Vtpm_mgr.Driver.Denied _ -> ());
  match
    Host.management host ~process:Host.manager_process ~token:(Host.manager_token host)
      Monitor.Export_audit
  with
  | Ok (Monitor.M_audit entries) ->
      check_b "has entries" true (List.length entries >= 6);
      check_b "contains a denial" true
        (List.exists (fun (e : Audit.entry) -> not e.Audit.allowed) entries);
      check_b "chain verifies" true
        (Audit.verify_chain ~expected_head:(Audit.head (Host.monitor_exn host).Monitor.audit) entries
        = Ok ())
  | Ok _ -> Alcotest.fail "unexpected result"
  | Error e -> Alcotest.fail e


(* Full attested-service flow: event-logged boot, quote, verifier replay
   against a whitelist, plus each way the verification must fail. *)
let test_attestation_verifier_flow () =
  let host = Host.create ~mode:Host.Improved_mode ~seed:117 ~rsa_bits:256 () in
  let g = Host.create_guest_exn host ~name:"attested" ~label:"tenant_v" () in
  let c = Host.guest_client host g in
  (* Measured boot with an event log. *)
  let log = Vtpm_tpm.Eventlog.create () in
  let boot_chain = [ ("vmlinuz", 10); ("initrd.img", 10); ("app.service", 11) ] in
  List.iter
    (fun (sw, pcr) ->
      let digest =
        Vtpm_tpm.Eventlog.record log ~pcr ~event_type:Vtpm_tpm.Eventlog.ev_ipl ~description:sw
          ~data:(sw ^ "-contents")
      in
      ignore (unwrap "extend" (Vtpm_tpm.Client.extend c ~pcr ~digest)))
    boot_chain;
  (* AIK + quote. *)
  let srk_auth = Vtpm_crypto.Sha1.digest "sa" in
  let _ = unwrap "own" (Vtpm_tpm.Client.take_ownership c ~owner_auth:"oa" ~srk_auth) in
  let sess =
    unwrap "osap"
      (Vtpm_tpm.Client.start_osap c ~entity_handle:Vtpm_tpm.Types.kh_srk ~usage_secret:srk_auth)
  in
  let aik_auth = Vtpm_crypto.Sha1.digest "aik" in
  let blob, aik_pub =
    unwrap "create"
      (Vtpm_tpm.Client.create_wrap_key c sess ~parent:Vtpm_tpm.Types.kh_srk
         ~usage:Vtpm_tpm.Types.Signing ~key_auth:aik_auth ())
  in
  let handle =
    unwrap "load" (Vtpm_tpm.Client.load_key2 ~continue:false c sess ~parent:Vtpm_tpm.Types.kh_srk ~blob)
  in
  let sel = Vtpm_tpm.Types.Pcr_selection.of_list [ 10; 11 ] in
  let nonce = Vtpm_crypto.Sha1.digest "fresh-challenge" in
  let qs = unwrap "oiap" (Vtpm_tpm.Client.start_oiap c ~usage_secret:aik_auth) in
  let composite, signature, pubkey =
    unwrap "quote" (Vtpm_tpm.Client.quote ~continue:false c qs ~key:handle ~external_data:nonce ~pcr_sel:sel)
  in
  let evidence =
    { Attestation.composite; signature; pubkey; pcr_sel = sel; event_log = log }
  in
  (* Verifier with the right whitelist + enrolled AIK accepts. *)
  let vp = Attestation.policy () in
  List.iter
    (fun (sw, _) -> Attestation.whitelist vp ~software:sw ~data:(sw ^ "-contents"))
    boot_chain;
  Attestation.enroll_key vp aik_pub;
  (match Attestation.verify vp ~nonce evidence with
  | Ok () -> ()
  | Error f -> Alcotest.failf "verify failed: %a" Attestation.pp_failure f);
  (* Failure 1: un-enrolled key. *)
  let vp_nokey = Attestation.policy () in
  List.iter (fun (sw, _) -> Attestation.whitelist vp_nokey ~software:sw ~data:(sw ^ "-contents")) boot_chain;
  (match Attestation.verify vp_nokey ~nonce evidence with
  | Error Attestation.Untrusted_key -> ()
  | _ -> Alcotest.fail "unenrolled key accepted");
  (* Failure 2: wrong nonce (replayed quote). *)
  (match Attestation.verify vp ~nonce:(Vtpm_crypto.Sha1.digest "stale") evidence with
  | Error Attestation.Bad_signature -> ()
  | _ -> Alcotest.fail "replayed quote accepted");
  (* Failure 3: log missing an event no longer replays the composite. *)
  let partial = Vtpm_tpm.Eventlog.create () in
  List.iteri
    (fun i (sw, pcr) ->
      if i < 2 then
        ignore
          (Vtpm_tpm.Eventlog.record partial ~pcr ~event_type:Vtpm_tpm.Eventlog.ev_ipl
             ~description:sw ~data:(sw ^ "-contents")))
    boot_chain;
  (match Attestation.verify vp ~nonce { evidence with Attestation.event_log = partial } with
  | Error (Attestation.Composite_mismatch _) -> ()
  | _ -> Alcotest.fail "incomplete log accepted");
  (* Failure 4: an unknown measurement in an otherwise consistent log. *)
  let vp_strict = Attestation.policy () in
  Attestation.enroll_key vp_strict aik_pub;
  List.iteri
    (fun i (sw, _) ->
      if i < 2 then Attestation.whitelist vp_strict ~software:sw ~data:(sw ^ "-contents"))
    boot_chain;
  (match Attestation.verify vp_strict ~nonce evidence with
  | Error (Attestation.Unknown_measurement e) ->
      check_s "names the culprit" "app.service" e.Vtpm_tpm.Eventlog.description
  | _ -> Alcotest.fail "unknown measurement accepted");
  (* Deep variant: hardware linkage also checks out. *)
  let dq =
    match Vtpm_mgr.Deep_quote.produce host.Host.mgr ~vtpm_quote:(composite, signature, pubkey) with
    | Ok dq -> dq
    | Error e -> Alcotest.fail e
  in
  Attestation.enroll_key vp dq.Vtpm_mgr.Deep_quote.hw_pubkey;
  (match Attestation.verify_deep vp ~nonce evidence dq with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("deep verify: " ^ e))

let suite =
  [
    Alcotest.test_case "tenant journey (improved)" `Quick test_tenant_journey_improved;
    Alcotest.test_case "tenant isolation both modes" `Quick test_tenant_isolation_both_modes;
    Alcotest.test_case "cross-host migration" `Quick test_cross_host_migration;
    Alcotest.test_case "measured-boot policy" `Quick test_measured_boot_policy;
    Alcotest.test_case "deep attestation" `Quick test_deep_attestation_end_to_end;
    Alcotest.test_case "destroy guest cleanup" `Quick test_destroy_guest_cleans_up;
    Alcotest.test_case "many guests" `Quick test_many_guests;
    Alcotest.test_case "audit trail" `Quick test_audit_trail_end_to_end;
    Alcotest.test_case "attestation verifier flow" `Quick test_attestation_verifier_flow;
  ]
