(* The security evaluation as tests: every attack must succeed against
   the baseline manager and fail against the improved monitor — the
   paper's headline claim, enforced by CI. *)

open Vtpm_access

let check_b = Alcotest.(check bool)

let outcome_for ~mode name =
  match List.assoc_opt name Vtpm_attacks.Attack.all with
  | None -> Alcotest.failf "unknown attack %s" name
  | Some attack -> attack (Vtpm_attacks.Attack.setup ~mode ~seed:97 ())

let succeeds_in_baseline name () =
  let o = outcome_for ~mode:Host.Baseline_mode name in
  check_b (name ^ " retrieves in baseline") true o.Vtpm_attacks.Attack.succeeded

let blocked_in_improved name () =
  let o = outcome_for ~mode:Host.Improved_mode name in
  check_b
    (Printf.sprintf "%s blocked in improved (%s)" name o.Vtpm_attacks.Attack.detail)
    false o.Vtpm_attacks.Attack.succeeded

let test_batteries_agree () =
  (* run_battery runs each attack once per mode; counts match the claim. *)
  let count mode =
    List.length
      (List.filter
         (fun (o : Vtpm_attacks.Attack.outcome) -> o.Vtpm_attacks.Attack.succeeded)
         (Vtpm_attacks.Attack.run_battery ~mode))
  in
  Alcotest.(check int) "baseline: all succeed" (List.length Vtpm_attacks.Attack.all)
    (count Host.Baseline_mode);
  Alcotest.(check int) "improved: none succeed" 0 (count Host.Improved_mode)

let test_fixture_shape () =
  let f = Vtpm_attacks.Attack.setup ~mode:Host.Improved_mode ~seed:5 () in
  check_b "distinct guests" true (f.Vtpm_attacks.Attack.victim.Host.domid <> f.Vtpm_attacks.Attack.attacker.Host.domid);
  check_b "sealed blob nonempty" true (String.length f.Vtpm_attacks.Attack.sealed_blob > 0);
  check_b "secret not in blob" true
    (* The sealed blob must not contain the plaintext secret. *)
    (let blob = f.Vtpm_attacks.Attack.sealed_blob and sec = f.Vtpm_attacks.Attack.secret in
     let n = String.length blob and m = String.length sec in
     let found = ref false in
     for i = 0 to n - m do
       if String.sub blob i m = sec then found := true
     done;
     not !found)

let test_repoint_raises_tamper_alert () =
  (* Beyond being blocked, the XenStore re-pointing attempt must leave
     forensic evidence in the audit log. *)
  let f = Vtpm_attacks.Attack.setup ~mode:Host.Improved_mode ~seed:131 () in
  let o = Vtpm_attacks.Attack.xenstore_repoint f in
  check_b "blocked" false o.Vtpm_attacks.Attack.succeeded;
  let monitor = Host.monitor_exn f.Vtpm_attacks.Attack.host in
  check_b "tamper alert recorded" true
    (List.exists
       (fun (e : Vtpm_access.Audit.entry) -> e.Vtpm_access.Audit.operation = "tamper-alert")
       (Vtpm_access.Audit.entries monitor.Vtpm_access.Monitor.audit))

let per_attack_cases =
  List.concat_map
    (fun (name, _) ->
      [
        Alcotest.test_case (name ^ " baseline") `Quick (succeeds_in_baseline name);
        Alcotest.test_case (name ^ " improved") `Quick (blocked_in_improved name);
      ])
    Vtpm_attacks.Attack.all

let suite =
  per_attack_cases
  @ [
      Alcotest.test_case "battery counts" `Slow test_batteries_agree;
      Alcotest.test_case "fixture shape" `Quick test_fixture_shape;
      Alcotest.test_case "repoint leaves evidence" `Quick test_repoint_raises_tamper_alert;
    ]
