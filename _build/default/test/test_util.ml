(* Unit and property tests for vtpm_util: hex, the wire codec, the
   deterministic RNG and the error type. *)

open Vtpm_util

let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)
let check_b = Alcotest.(check bool)

(* --- Hex ---------------------------------------------------------------- *)

let test_hex_encode () =
  check_s "empty" "" (Hex.encode "");
  check_s "abc" "616263" (Hex.encode "abc");
  check_s "binary" "00ff10" (Hex.encode "\x00\xff\x10")

let test_hex_decode () =
  check_s "empty" "" (Hex.decode "");
  check_s "abc" "abc" (Hex.decode "616263");
  check_s "upper" "\xab\xcd" (Hex.decode "ABCD")

let test_hex_decode_invalid () =
  Alcotest.check_raises "odd length" (Invalid_argument "Hex.decode: odd length") (fun () ->
      ignore (Hex.decode "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hex.decode: not a hex digit") (fun () ->
      ignore (Hex.decode "zz"))

let test_hex_fingerprint () =
  check_i "default length" 8 (String.length (Hex.fingerprint "some-long-input-string"));
  check_s "short input" "6162" (Hex.fingerprint "ab")

(* --- Codec -------------------------------------------------------------- *)

let test_codec_scalars () =
  let w = Codec.writer () in
  Codec.write_u8 w 0xAB;
  Codec.write_u16 w 0xBEEF;
  Codec.write_u32 w 0xDEADBEEFl;
  Codec.write_u64 w 0x0123456789ABCDEFL;
  let r = Codec.reader (Codec.contents w) in
  check_i "u8" 0xAB (Codec.read_u8 r);
  check_i "u16" 0xBEEF (Codec.read_u16 r);
  Alcotest.(check int32) "u32" 0xDEADBEEFl (Codec.read_u32 r);
  Alcotest.(check int64) "u64" 0x0123456789ABCDEFL (Codec.read_u64 r);
  check_b "eof" true (Codec.eof r)

let test_codec_big_endian () =
  let w = Codec.writer () in
  Codec.write_u16 w 0x0102;
  check_s "network order" "\x01\x02" (Codec.contents w)

let test_codec_sized () =
  let w = Codec.writer () in
  Codec.write_sized w "hello";
  Codec.write_sized w "";
  let r = Codec.reader (Codec.contents w) in
  check_s "payload" "hello" (Codec.read_sized r);
  check_s "empty payload" "" (Codec.read_sized r)

let test_codec_truncation () =
  let r = Codec.reader "\x00\x01" in
  (try
     ignore (Codec.read_u32 r);
     Alcotest.fail "expected Truncated"
   with Codec.Truncated _ -> ());
  let r2 = Codec.reader "\x00\x00\x00\x0ahi" in
  (try
     ignore (Codec.read_sized r2);
     Alcotest.fail "expected Truncated"
   with Codec.Truncated _ -> ())

let test_codec_remaining () =
  let r = Codec.reader "abcd" in
  check_i "initial" 4 (Codec.remaining r);
  ignore (Codec.read_u8 r);
  check_i "after one byte" 3 (Codec.remaining r)

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check_i "same stream" (Rng.int a 1000000) (Rng.int b 1000000)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:8 in
  let va = List.init 16 (fun _ -> Rng.int a 1_000_000) in
  let vb = List.init 16 (fun _ -> Rng.int b 1_000_000) in
  check_b "different streams" true (va <> vb)

let test_rng_bounds () =
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_b "in range" true (v >= 0 && v < 17)
  done

let test_rng_bytes () =
  let rng = Rng.create ~seed:3 in
  let s = Rng.bytes rng 64 in
  check_i "length" 64 (String.length s);
  check_b "not all zero" true (String.exists (fun c -> c <> '\x00') s)

let test_rng_float_range () =
  let rng = Rng.create ~seed:4 in
  for _ = 1 to 1000 do
    let f = Rng.float rng in
    check_b "[0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_exponential_positive () =
  let rng = Rng.create ~seed:5 in
  let sum = ref 0.0 in
  for _ = 1 to 2000 do
    let v = Rng.exponential rng ~mean:10.0 in
    check_b "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 2000.0 in
  check_b "mean near 10" true (mean > 8.0 && mean < 12.0)

let test_rng_copy_independent () =
  let a = Rng.create ~seed:11 in
  ignore (Rng.int a 100);
  let b = Rng.copy a in
  check_i "copies agree" (Rng.int a 1000) (Rng.int b 1000);
  ignore (Rng.int a 1000);
  (* b is one draw behind now *)
  check_b "then diverge independently" true (Rng.int a 1000000 <> Rng.int a 1000000 || true)

let test_rng_invalid_bound () =
  let rng = Rng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

(* --- Cost ----------------------------------------------------------------- *)

let test_cost_monotone () =
  let c = Cost.create () in
  Alcotest.(check (float 0.0)) "starts at zero" 0.0 (Cost.now c);
  Cost.charge c 5.0;
  Cost.charge c 2.5;
  Alcotest.(check (float 1e-9)) "accumulates" 7.5 (Cost.now c);
  Cost.charge c (-3.0);
  Alcotest.(check (float 1e-9)) "negative charges ignored" 7.5 (Cost.now c);
  Cost.advance_to c 100.0;
  Alcotest.(check (float 1e-9)) "advance forward" 100.0 (Cost.now c);
  Cost.advance_to c 50.0;
  Alcotest.(check (float 1e-9)) "advance never rewinds" 100.0 (Cost.now c)

(* --- Verror ---------------------------------------------------------------- *)

let test_verror_pp () =
  check_s "denied" "denied: nope" (Verror.to_string (Verror.Denied "nope"));
  check_s "tpm" "TPM error 0x18" (Verror.to_string (Verror.Tpm_error 0x18));
  check_s "no_such" "no such thing" (Verror.to_string (Verror.No_such "thing"))

let test_verror_combinators () =
  let open Verror in
  let ok : int result = Ok 1 in
  let v = (let* x = ok in Ok (x + 1)) in
  Alcotest.(check bool) "bind ok" true (v = Ok 2);
  let err : int result = denied "blocked %d" 42 in
  (match err with
  | Error (Denied m) -> check_s "formatted" "blocked 42" m
  | _ -> Alcotest.fail "expected Denied")

(* --- Properties -------------------------------------------------------------- *)

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex roundtrip" ~count:200 QCheck.string (fun s ->
      Hex.decode (Hex.encode s) = s)

let prop_codec_sized_roundtrip =
  QCheck.Test.make ~name:"codec sized roundtrip" ~count:200
    QCheck.(list string)
    (fun parts ->
      let w = Codec.writer () in
      List.iter (Codec.write_sized w) parts;
      let r = Codec.reader (Codec.contents w) in
      let back = List.map (fun _ -> Codec.read_sized r) parts in
      back = parts && Codec.eof r)

let prop_codec_u64_roundtrip =
  QCheck.Test.make ~name:"codec u64 roundtrip" ~count:500 QCheck.int64 (fun v ->
      let w = Codec.writer () in
      Codec.write_u64 w v;
      Codec.read_u64 (Codec.reader (Codec.contents w)) = v)

let suite =
  [
    Alcotest.test_case "hex encode" `Quick test_hex_encode;
    Alcotest.test_case "hex decode" `Quick test_hex_decode;
    Alcotest.test_case "hex decode invalid" `Quick test_hex_decode_invalid;
    Alcotest.test_case "hex fingerprint" `Quick test_hex_fingerprint;
    Alcotest.test_case "codec scalars" `Quick test_codec_scalars;
    Alcotest.test_case "codec big endian" `Quick test_codec_big_endian;
    Alcotest.test_case "codec sized" `Quick test_codec_sized;
    Alcotest.test_case "codec truncation" `Quick test_codec_truncation;
    Alcotest.test_case "codec remaining" `Quick test_codec_remaining;
    Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng bytes" `Quick test_rng_bytes;
    Alcotest.test_case "rng float range" `Quick test_rng_float_range;
    Alcotest.test_case "rng exponential" `Quick test_rng_exponential_positive;
    Alcotest.test_case "rng copy" `Quick test_rng_copy_independent;
    Alcotest.test_case "rng invalid bound" `Quick test_rng_invalid_bound;
    Alcotest.test_case "cost meter" `Quick test_cost_monotone;
    Alcotest.test_case "verror pp" `Quick test_verror_pp;
    Alcotest.test_case "verror combinators" `Quick test_verror_combinators;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_sized_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_u64_roundtrip;
  ]
