test/test_vtpm.ml: Alcotest Bytes Char Deep_quote Driver List Manager Migration Proto Result Stateproc String Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_util Vtpm_xen
