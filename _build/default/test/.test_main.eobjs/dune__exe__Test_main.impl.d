test/test_main.ml: Alcotest Test_access Test_attacks Test_crypto Test_integration Test_sim Test_tpm Test_util Test_vtpm Test_xen
