test/test_xen.ml: Alcotest Domain Evtchn Gnttab Hypervisor List Printf QCheck QCheck_alcotest Result Ring Sched Vtpm_crypto Vtpm_xen Xenstore
