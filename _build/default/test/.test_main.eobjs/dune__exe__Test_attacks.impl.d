test/test_attacks.ml: Alcotest Host List Printf String Vtpm_access Vtpm_attacks
