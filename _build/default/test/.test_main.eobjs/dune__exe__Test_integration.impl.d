test/test_integration.ml: Alcotest Attestation Audit Binding Host List Monitor Policy Printf Result Stdlib Vtpm_access Vtpm_crypto Vtpm_mgr Vtpm_tpm Vtpm_xen
