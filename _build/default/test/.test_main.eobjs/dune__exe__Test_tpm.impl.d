test/test_tpm.ml: Alcotest Auth Bytes Char Client Cmd Engine Eventlog Keystore Lazy List Nvram Pcr Printf QCheck QCheck_alcotest Result Stdlib String Types Vtpm_crypto Vtpm_tpm Vtpm_util Wire
