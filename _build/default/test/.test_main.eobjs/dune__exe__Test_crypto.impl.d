test/test_crypto.ml: Alcotest Bignum Bytes Char Drbg Hmac Lazy List Option Printf QCheck QCheck_alcotest Rsa Sha1 Sha256 String Vtpm_crypto Vtpm_util Xtea
