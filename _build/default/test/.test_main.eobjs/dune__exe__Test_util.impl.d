test/test_util.ml: Alcotest Codec Cost Hex List QCheck QCheck_alcotest Rng String Verror Vtpm_util
