test/test_sim.ml: Alcotest Float Hashtbl Host List Printf QCheck QCheck_alcotest Stdlib String Vtpm_access Vtpm_sim Vtpm_util
